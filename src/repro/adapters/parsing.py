"""Parsing system artifacts into Grade10 traces.

The simulated systems emit JSONL event logs and monitoring CSVs; this
module turns them into the :class:`~repro.core.traces.ExecutionTrace` /
:class:`~repro.core.traces.ResourceTrace` pair the Grade10 core consumes.

Two parsing knobs correspond to the paper's tuned-vs-untuned model
comparison (§IV-B):

* ``include_blocking`` — whether the expert model knows about blocking
  events (GC pauses, queue stalls).  An untuned model does not.
* ``include_gc_phases`` — whether stop-the-world collections appear as
  first-class ``/GC`` phases that demand CPU (an Exact rule in the tuned
  model).  Without them, the CPU the collector burns is unexplained and
  smears across the measurement window — the untuned model's 91 % error.
"""

from __future__ import annotations

from .. import obs
from ..core.traces import ExecutionTrace, PhaseInstance, ResourceTrace
from ..systems.logging import EventLog

__all__ = ["parse_execution_trace", "merge_blocking_into_resource_trace", "GC_PHASE_PATH"]

#: Phase path under which tuned models expose stop-the-world collections.
GC_PHASE_PATH = "/GC"


def parse_execution_trace(
    log: EventLog,
    *,
    include_blocking: bool = True,
    include_gc_phases: bool = False,
) -> ExecutionTrace:
    """Build an execution trace from a structured event log.

    The emitting systems write parents before children, every instance
    exactly once, and close every phase they open — but *degraded* logs
    (truncated, reordered, or with dropped events; see :mod:`repro.faults`)
    break each of those guarantees, so parsing repairs rather than
    assumes:

    * duplicate ``phase_start`` events for one instance id keep the first;
    * unmatched starts are closed at the log's horizon;
    * children are added after their parents regardless of log order;
    * instances whose parent never starts in the log are promoted to
      top-level (the hierarchy above them was lost, not their work).
    """
    with obs.span("parse", n_events=len(log.events)):
        return _parse_execution_trace(
            log,
            include_blocking=include_blocking,
            include_gc_phases=include_gc_phases,
        )


def _parse_execution_trace(
    log: EventLog,
    *,
    include_blocking: bool,
    include_gc_phases: bool,
) -> ExecutionTrace:
    starts: dict[str, dict] = {}
    ends: dict[str, float] = {}
    blocks: dict[str, list[tuple[str, float, float]]] = {}
    pending_blocks: dict[tuple[str, str], float] = {}
    gc_events: list[tuple[str, float, float]] = []
    order: list[str] = []
    horizon = 0.0

    for ev in log.events:
        kind = ev["event"]
        t = float(ev.get("t", 0.0))
        horizon = max(horizon, t, float(ev.get("t_end", 0.0)))
        if kind == "phase_start":
            if ev["id"] not in starts:
                starts[ev["id"]] = ev
                order.append(ev["id"])
        elif kind == "phase_end":
            ends[ev["id"]] = t
        elif kind == "block_start":
            pending_blocks[(ev["id"], ev["resource"])] = t
        elif kind == "block_end":
            key = (ev["id"], ev["resource"])
            t0 = pending_blocks.pop(key, None)
            if t0 is not None:
                blocks.setdefault(ev["id"], []).append((ev["resource"], t0, t))
        elif kind == "gc":
            gc_events.append((ev["machine"], t, float(ev["t_end"])))

    trace = ExecutionTrace()

    def add_instance(iid: str, parent_id: str | None) -> None:
        ev = starts[iid]
        inst = PhaseInstance(
            instance_id=iid,
            phase_path=ev["path"],
            t_start=float(ev["t"]),
            t_end=ends.get(iid, horizon),
            parent_id=parent_id,
            machine=ev.get("machine"),
            worker=ev.get("worker"),
            thread=ev.get("thread"),
            depends_on=list(ev.get("depends_on", ())),
        )
        if include_blocking:
            for resource, t0, t1 in blocks.get(iid, []):
                inst.add_blocking(resource, t0, t1)
        trace.add(inst)

    # Multi-pass insertion: each pass adds every instance whose parent is
    # already placed (or provably absent).  A well-formed log completes in
    # one pass in emission order; a reordered log needs at most depth
    # passes; a cyclic (corrupt) remainder is promoted to top-level.
    pending = list(order)
    while pending:
        deferred: list[str] = []
        for iid in pending:
            parent_id = starts[iid].get("parent")
            if parent_id is None or parent_id in trace:
                add_instance(iid, parent_id)
            elif parent_id not in starts:
                add_instance(iid, None)  # hierarchy above was lost
            else:
                deferred.append(iid)
        if len(deferred) == len(pending):
            for iid in deferred:  # parent cycle: sever it
                add_instance(iid, None)
            break
        pending = deferred

    if include_gc_phases:
        for k, (machine, t0, t1) in enumerate(gc_events):
            trace.add(
                PhaseInstance(
                    instance_id=f"{GC_PHASE_PATH}#{machine}#{k}",
                    phase_path=GC_PHASE_PATH,
                    t_start=t0,
                    t_end=t1,
                    machine=machine,
                    worker=machine,
                )
            )
    return trace


def merge_blocking_into_resource_trace(log: EventLog, resource_trace: ResourceTrace) -> ResourceTrace:
    """Register the log's blocking and GC intervals on the resource trace.

    The resource trace's blocking-event list is the §III-C "framework
    specific resource usage metrics extracted from execution logs".
    """
    pending: dict[tuple[str, str], float] = {}
    for ev in log.events:
        kind = ev["event"]
        if kind == "block_start":
            pending[(ev["id"], ev["resource"])] = float(ev["t"])
        elif kind == "block_end":
            t0 = pending.pop((ev["id"], ev["resource"]), None)
            if t0 is not None:
                resource_trace.add_blocking_event(ev["resource"], t0, float(ev["t"]))
        elif kind == "gc":
            resource_trace.add_blocking_event(
                f"gc@{ev['machine']}", float(ev["t"]), float(ev["t_end"])
            )
    return resource_trace
