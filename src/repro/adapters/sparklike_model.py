"""Expert models for the Spark-like dataflow engine (§V extension).

The dataflow model is simpler than the graph engines': a Job contains a
DAG of Stage instances (instance-level ``depends_on`` edges, not a static
sibling order); a Stage contains per-core Task phases and per-machine
Shuffle phases.  Tasks demand exactly one core, shuffles demand the NIC.
"""

from __future__ import annotations

from ..core.phases import ExecutionModel
from ..core.resources import ResourceModel
from ..core.rules import NoneRule, RuleMatrix
from ..systems.sparklike import SparkLikeConfig, SparkLikeRun

__all__ = [
    "sparklike_execution_model",
    "sparklike_resource_model",
    "sparklike_tuned_rules",
    "build_sparklike_models",
]


def sparklike_execution_model() -> ExecutionModel:
    """The phase hierarchy of the dataflow engine (Job → Stage → Task/Shuffle)."""
    m = ExecutionModel(
        "sparklike-sim",
        "DAG dataflow engine: Job -> Stage DAG -> Tasks + Shuffle",
    )
    m.add_phase("/Job")
    # Stages are concurrent siblings ordered by instance-level depends_on
    # edges, not by a type-level DAG.
    m.add_phase("/Job/Stage", repeatable=True, concurrent=True)
    m.add_phase("/Job/Stage/Task", concurrent=True)
    m.add_phase("/Job/Stage/Shuffle", concurrent=True)
    return m


def sparklike_resource_model(config: SparkLikeConfig, machine_names: list[str]) -> ResourceModel:
    """Per-machine CPU and NIC consumables (no blocking resources)."""
    rm = ResourceModel("sparklike-cluster")
    for name in machine_names:
        rm.add_consumable(
            f"cpu@{name}", capacity=float(config.cores_per_machine), unit="cores"
        )
        rm.add_consumable(f"net@{name}", capacity=config.net_bandwidth, unit="B/s")
    return rm


def sparklike_tuned_rules(config: SparkLikeConfig) -> RuleMatrix:
    """Tasks demand exactly one core; shuffles demand the NIC."""
    rules = RuleMatrix(implicit_rule=NoneRule())
    rules.set_exact("/Job/Stage/Task", "cpu@{machine}", 1.0 / config.cores_per_machine)
    rules.set_variable("/Job/Stage/Shuffle", "net@{machine}", 1.0)
    return rules


def build_sparklike_models(
    run: SparkLikeRun,
) -> tuple[ExecutionModel, ResourceModel, RuleMatrix]:
    """All tuned inputs for one run's configuration."""
    return (
        sparklike_execution_model(),
        sparklike_resource_model(run.config, run.machine_names),
        sparklike_tuned_rules(run.config),
    )
