"""Adapters connecting the simulated systems to the Grade10 core.

Parsers turn JSONL logs and monitoring CSVs into Grade10 traces; the
model modules are the paper's "expert input": execution models, resource
models, and tuned/untuned attribution rules for both engines.
"""

from .giraph_model import (
    build_giraph_models,
    giraph_execution_model,
    giraph_resource_model,
    giraph_tuned_rules,
    giraph_untuned_rules,
)
from .parsing import (
    GC_PHASE_PATH,
    merge_blocking_into_resource_trace,
    parse_execution_trace,
)
from .powergraph_model import (
    build_powergraph_models,
    powergraph_execution_model,
    powergraph_resource_model,
    powergraph_tuned_rules,
    powergraph_untuned_rules,
)
from .sparklike_model import (
    build_sparklike_models,
    sparklike_execution_model,
    sparklike_resource_model,
    sparklike_tuned_rules,
)

__all__ = [
    "build_giraph_models",
    "giraph_execution_model",
    "giraph_resource_model",
    "giraph_tuned_rules",
    "giraph_untuned_rules",
    "GC_PHASE_PATH",
    "merge_blocking_into_resource_trace",
    "parse_execution_trace",
    "build_powergraph_models",
    "powergraph_execution_model",
    "powergraph_resource_model",
    "powergraph_tuned_rules",
    "powergraph_untuned_rules",
    "build_sparklike_models",
    "sparklike_execution_model",
    "sparklike_resource_model",
    "sparklike_tuned_rules",
]
