"""Expert execution/resource models and attribution rules for sim-Giraph.

This module is the "defined once by a domain expert, reused by many users"
input of the paper's Figure 1 (components 4 and 5), written against the
:mod:`repro.systems.giraph` engine:

* the **execution model** is the paper's running example — Load, Execute
  (a sequence of supersteps, each Prepare → {Compute ∥ Communicate} →
  WorkerBarrier), Store — plus a top-level GC phase type used by the tuned
  variant;
* the **resource model** declares per-machine CPU (capacity = cores) and
  NIC (capacity = line rate) consumables plus per-machine ``gc@…`` and
  ``queue@…`` blocking resources;
* the **tuned rule matrix** encodes the insight evaluated in Figure 3:
  an active compute thread always demands exactly one core
  (``Exact 1/#cores``), communication demands the NIC, GC demands most of
  the machine's cores, and barrier waits demand nothing.  The **untuned**
  variant is the implicit ``Variable(1×)``-everywhere matrix.
"""

from __future__ import annotations

from ..core.phases import ExecutionModel
from ..core.resources import ResourceModel
from ..core.rules import NoneRule, RuleMatrix
from ..systems.giraph import GiraphConfig, GiraphRun
from .parsing import GC_PHASE_PATH

__all__ = [
    "giraph_execution_model",
    "giraph_resource_model",
    "giraph_tuned_rules",
    "giraph_untuned_rules",
]


def giraph_execution_model() -> ExecutionModel:
    """The hierarchical phase DAG of the simulated Giraph engine."""
    m = ExecutionModel(
        "giraph-sim",
        "BSP engine: Load -> Execute (supersteps) -> Store, with a managed runtime",
    )
    m.add_phase("/Load")
    m.add_phase("/Load/LoadWorker", concurrent=True)
    m.add_phase("/Execute", after="Load")
    m.add_phase("/Execute/Superstep", repeatable=True)
    m.add_phase("/Execute/Superstep/Prepare", concurrent=True)
    m.add_phase("/Execute/Superstep/Compute", after="Prepare", concurrent=True)
    m.add_phase("/Execute/Superstep/Compute/ComputeThread", concurrent=True)
    # Background message sending runs concurrently with Compute; its span is
    # the compute span (elastic in replay), while Flush is the real drain
    # tail that must finish before the barrier releases.
    m.add_phase(
        "/Execute/Superstep/Communicate",
        after="Prepare",
        concurrent=True,
        balanceable=False,
        wait=True,
    )
    m.add_phase("/Execute/Superstep/Flush", after="Compute", concurrent=True)
    m.add_phase(
        "/Execute/Superstep/WorkerBarrier",
        after=("Compute", "Flush"),
        concurrent=True,
        balanceable=False,  # pure wait: no redistributable work
        wait=True,  # elastic in replay: its length is an artifact of the barrier
    )
    m.add_phase("/Store", after="Execute")
    m.add_phase("/Store/StoreWorker", concurrent=True)
    # Stop-the-world collections run concurrently with everything (tuned
    # models instantiate them; untuned parses never create instances).
    m.add_phase(GC_PHASE_PATH, repeatable=True, concurrent=True)
    return m


def giraph_resource_model(config: GiraphConfig, machine_names: list[str]) -> ResourceModel:
    """Per-machine consumable and blocking resources of the deployment."""
    rm = ResourceModel("giraph-cluster")
    for name in machine_names:
        rm.add_consumable(
            f"cpu@{name}",
            capacity=float(config.threads_per_machine),
            unit="cores",
            description=f"CPU cores of {name}",
        )
        rm.add_consumable(
            f"net@{name}",
            capacity=config.net_bandwidth,
            unit="B/s",
            description=f"egress NIC of {name}",
        )
        rm.add_blocking(f"gc@{name}", description=f"stop-the-world GC pauses on {name}")
        rm.add_blocking(f"queue@{name}", description=f"full outbound message queue on {name}")
    return rm


def giraph_tuned_rules(config: GiraphConfig) -> RuleMatrix:
    """The fully tuned attribution-rule matrix (Figure 3b / Table II tuned)."""
    per_thread = 1.0 / config.threads_per_machine
    rules = RuleMatrix(implicit_rule=NoneRule())
    rules.set_exact("/Load/LoadWorker", "cpu@{machine}", per_thread)
    rules.set_exact("/Store/StoreWorker", "cpu@{machine}", per_thread)
    rules.set_variable("/Execute/Superstep/Prepare", "cpu@{machine}", 0.5)
    # The paper's key tuned rule: an active compute thread always uses
    # precisely one CPU core.
    rules.set_exact("/Execute/Superstep/Compute/ComputeThread", "cpu@{machine}", per_thread)
    rules.set_variable("/Execute/Superstep/Communicate", "net@{machine}", 1.0)
    rules.set_variable("/Execute/Superstep/Flush", "net@{machine}", 1.0)
    # GC bursts demand (most of) the machine's cores while they run.
    rules.set_exact(GC_PHASE_PATH, "cpu@{machine}", 0.7)
    return rules


def giraph_untuned_rules() -> RuleMatrix:
    """No expert rules: the implicit Variable(1x) for every phase (§IV-B)."""
    return RuleMatrix()


def build_giraph_models(run: GiraphRun) -> tuple[ExecutionModel, ResourceModel, RuleMatrix]:
    """Convenience: all tuned inputs for one run's configuration."""
    return (
        giraph_execution_model(),
        giraph_resource_model(run.config, run.machine_names),
        giraph_tuned_rules(run.config),
    )
