"""Deterministic fault injection for run archives.

Grade10's promise is turning *imperfect* telemetry into a trustworthy
profile, so the pipeline must be exercised on imperfect telemetry.  This
module perturbs a run archive (see :mod:`repro.workloads.archive`)
*between generation and analysis* — exactly where real degradation
happens: the monitoring collector drops or duplicates samples, the log
shipper truncates or reorders events, machines disagree about the time,
a metrics exporter flatlines, an instrumentation hook is lost.

Design:

* every fault is a frozen, parameterized :class:`FaultSpec` whose
  :meth:`~FaultSpec.apply` rewrites an in-memory
  :class:`ArchiveArtifacts`;
* faults compose — :func:`apply_faults` applies a sequence to a copy of
  the archive, leaving the source untouched;
* randomness is deterministic and *order-independent per fault*: each
  fault draws from its own :class:`random.Random` seeded by
  ``(seed, position, fault name)`` via
  :func:`repro.parallel.derive_cell_seed`, so a fixed seed always yields
  a byte-identical perturbed archive;
* round-tripping is exact: artifacts are re-serialized in the archive's
  native formats (``repr`` floats in CSV, compact JSON lines), so a
  zero-severity fault produces byte-identical files — the metamorphic
  anchor the test layer pins;
* :func:`run_fault_grid` sweeps fault type × severity through
  :func:`repro.parallel.parallel_map` and reports, per cell, whether the
  analysis stayed clean, raised a typed error, or surfaced
  :class:`~repro.core.invariants.InvariantViolation`\\ s.

Every perturbed archive carries a ``faults.json`` provenance record
(seed plus the applied fault descriptors).
"""

from __future__ import annotations

import csv
import fnmatch
import io
import json
import math
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from . import obs, progress
from .obs_logging import get_logger
from .parallel import derive_cell_seed, parallel_map
from .workloads.archive import (
    EVENTS_FILE,
    GROUND_TRUTH_FILE,
    META_FILE,
    MODELS_FILE,
    MONITORING_FILE,
    ArchiveError,
    ArchiveNotFoundError,
    REQUIRED_FILES,
)

_LOG = get_logger("repro.faults")

__all__ = [
    "FAULTS",
    "PROVENANCE_FILE",
    "FaultError",
    "FaultSpec",
    "DropSamples",
    "DuplicateSamples",
    "TruncateLog",
    "ReorderEvents",
    "ClockSkew",
    "ZeroResource",
    "DropPhaseBoundaries",
    "ArchiveArtifacts",
    "read_artifacts",
    "write_artifacts",
    "apply_faults",
    "fault_at",
    "fault_names",
    "parse_fault",
    "FaultGridCell",
    "run_fault_grid",
]

#: Provenance record written into every perturbed archive.
PROVENANCE_FILE = "faults.json"


class FaultError(ValueError):
    """A fault specification is invalid (unknown name, bad parameters)."""


# ---------------------------------------------------------------------- #
# Archive artifacts: the in-memory form faults operate on
# ---------------------------------------------------------------------- #

_CSV_HEADER = ["resource", "t_start", "t_end", "value"]


@dataclass
class ArchiveArtifacts:
    """A run archive loaded for perturbation.

    ``events`` are the parsed JSONL event dicts in file order;
    ``monitoring`` holds ``[resource, t_start, t_end, value]`` rows in
    file order.  ``models_bytes`` and ``ground_truth_bytes`` pass through
    opaquely — faults model telemetry degradation, not model corruption
    (byte-level corruption is covered by the archive truncation tests).
    """

    events: list[dict[str, Any]]
    monitoring: list[list[Any]]
    meta: dict[str, Any]
    models_bytes: bytes
    ground_truth_bytes: bytes | None = None

    @property
    def machines(self) -> list[str]:
        """Machine names, from metadata or inferred from the events."""
        names = self.meta.get("machines")
        if names:
            return list(names)
        seen: dict[str, None] = {}
        for ev in self.events:
            m = ev.get("machine")
            if m:
                seen.setdefault(m, None)
        return list(seen)

    def resources(self) -> list[str]:
        """Distinct monitored resource names, in first-seen order."""
        seen: dict[str, None] = {}
        for row in self.monitoring:
            seen.setdefault(row[0], None)
        return list(seen)

    def instance_machines(self) -> dict[str, str]:
        """Map instance id -> machine, from the phase_start events."""
        out: dict[str, str] = {}
        for ev in self.events:
            if ev.get("event") == "phase_start" and ev.get("machine"):
                out.setdefault(ev["id"], ev["machine"])
        return out


def read_artifacts(directory: str | Path) -> ArchiveArtifacts:
    """Load an archive's artifacts for perturbation.

    Raises :class:`~repro.workloads.archive.ArchiveNotFoundError` when the
    directory or a required file is absent, mirroring ``load_run``.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ArchiveNotFoundError(f"run archive not found: {directory}")
    missing = [name for name in REQUIRED_FILES if not (directory / name).is_file()]
    if missing:
        raise ArchiveNotFoundError(
            f"run archive at {directory} is incomplete: missing {', '.join(missing)}"
        )
    events = [
        json.loads(line)
        for line in (directory / EVENTS_FILE).read_text().splitlines()
        if line.strip()
    ]
    monitoring: list[list[Any]] = []
    with open(directory / MONITORING_FILE, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is not None and header != _CSV_HEADER:
            raise ArchiveError(f"unexpected monitoring CSV header: {header}")
        for row in reader:
            if row:
                monitoring.append([row[0], float(row[1]), float(row[2]), float(row[3])])
    gt = directory / GROUND_TRUTH_FILE
    return ArchiveArtifacts(
        events=events,
        monitoring=monitoring,
        meta=json.loads((directory / META_FILE).read_text()),
        models_bytes=(directory / MODELS_FILE).read_bytes(),
        ground_truth_bytes=gt.read_bytes() if gt.is_file() else None,
    )


def write_artifacts(artifacts: ArchiveArtifacts, directory: str | Path) -> Path:
    """Write artifacts in the archive's native serialization.

    Serialization matches ``save_run`` byte for byte (compact JSON lines,
    ``repr`` floats in the CSV), so an unperturbed round trip is the
    identity on every file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / EVENTS_FILE, "w") as fh:
        for ev in artifacts.events:
            fh.write(json.dumps(ev, separators=(",", ":")) + "\n")
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_CSV_HEADER)
    for resource, t_start, t_end, value in artifacts.monitoring:
        writer.writerow([resource, repr(t_start), repr(t_end), repr(value)])
    (directory / MONITORING_FILE).write_text(buf.getvalue(), newline="")
    (directory / MODELS_FILE).write_bytes(artifacts.models_bytes)
    (directory / META_FILE).write_text(json.dumps(artifacts.meta, indent=2))
    if artifacts.ground_truth_bytes is not None:
        (directory / GROUND_TRUTH_FILE).write_bytes(artifacts.ground_truth_bytes)
    return directory


# ---------------------------------------------------------------------- #
# The fault taxonomy
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FaultSpec:
    """One composable, parameterized archive perturbation."""

    #: Registry key; subclasses override.
    name = "fault"

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        """Perturb ``artifacts`` in place, drawing randomness from ``rng``."""
        raise NotImplementedError

    def params(self) -> dict[str, Any]:
        """The fault's parameters (for provenance records and labels)."""
        return {k: v for k, v in self.__dict__.items()}

    def describe(self) -> str:
        """Human-readable one-line descriptor, e.g. ``drop_samples(fraction=0.3)``."""
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params().items())
        return f"{self.name}({inner})"


def _check_fraction(fraction: float, what: str) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise FaultError(f"{what} must be in [0, 1], got {fraction}")


@dataclass(frozen=True)
class DropSamples(FaultSpec):
    """Drop a fraction of monitoring samples (collector loss).

    ``pattern`` restricts the loss to matching resource streams
    (``fnmatch`` glob, e.g. ``"cpu@*"``).
    """

    fraction: float = 0.1
    pattern: str = "*"
    name = "drop_samples"

    def __post_init__(self) -> None:
        _check_fraction(self.fraction, "drop_samples fraction")

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        if self.fraction == 0.0:
            return
        artifacts.monitoring = [
            row
            for row in artifacts.monitoring
            if not (fnmatch.fnmatch(row[0], self.pattern) and rng.random() < self.fraction)
        ]


@dataclass(frozen=True)
class DuplicateSamples(FaultSpec):
    """Duplicate a fraction of monitoring samples (at-least-once delivery)."""

    fraction: float = 0.1
    name = "duplicate_samples"

    def __post_init__(self) -> None:
        _check_fraction(self.fraction, "duplicate_samples fraction")

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        if self.fraction == 0.0:
            return
        out: list[list[Any]] = []
        for row in artifacts.monitoring:
            out.append(row)
            if rng.random() < self.fraction:
                out.append(list(row))
        artifacts.monitoring = out


@dataclass(frozen=True)
class TruncateLog(FaultSpec):
    """Drop the tail of the execution log (crashed or lagging shipper).

    ``fraction`` is the share of trailing events lost; ``1.0`` loses the
    whole log, which analysis must reject with a typed error.
    """

    fraction: float = 0.2
    name = "truncate_log"

    def __post_init__(self) -> None:
        _check_fraction(self.fraction, "truncate_log fraction")

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        keep = round(len(artifacts.events) * (1.0 - self.fraction))
        artifacts.events = artifacts.events[:keep]


@dataclass(frozen=True)
class ReorderEvents(FaultSpec):
    """Shuffle execution-log events within bounded windows.

    Models out-of-order delivery from concurrent per-machine log streams:
    events may arrive up to ``window`` positions out of place (timestamps
    are untouched).  ``severity`` scales the window in :func:`fault_at`.
    """

    window: int = 8
    name = "reorder_events"

    def __post_init__(self) -> None:
        if self.window < 1:
            raise FaultError(f"reorder_events window must be >= 1, got {self.window}")

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        if self.window == 1:
            return
        events = artifacts.events
        for lo in range(0, len(events), self.window):
            chunk = events[lo : lo + self.window]
            rng.shuffle(chunk)
            events[lo : lo + self.window] = chunk


@dataclass(frozen=True)
class ClockSkew(FaultSpec):
    """Shift one or more machines' clocks by a constant offset.

    Applies ``delta`` seconds to every event timestamp originating on the
    affected machines (phase boundaries, blocking intervals, GC) and to
    their monitoring windows (resources named ``<metric>@<machine>``).
    With ``machines=None`` the rng picks half the cluster (at least one).
    """

    delta: float = 0.5
    machines: tuple[str, ...] | None = None
    name = "clock_skew"

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        if self.delta == 0.0:
            return
        cluster = artifacts.machines
        if self.machines is not None:
            affected = set(self.machines)
            unknown = affected - set(cluster)
            if unknown:
                raise FaultError(
                    f"clock_skew targets unknown machine(s): {sorted(unknown)}"
                )
        elif cluster:
            affected = set(rng.sample(sorted(cluster), max(1, len(cluster) // 2)))
        else:
            return
        owner = artifacts.instance_machines()
        for ev in artifacts.events:
            machine = ev.get("machine") or owner.get(ev.get("id", ""))
            if machine not in affected:
                continue
            if "t" in ev:
                ev["t"] = ev["t"] + self.delta
            if "t_end" in ev:
                ev["t_end"] = ev["t_end"] + self.delta
        for row in artifacts.monitoring:
            _, _, machine = row[0].rpartition("@")
            if machine in affected:
                row[1] += self.delta
                row[2] += self.delta


@dataclass(frozen=True)
class ZeroResource(FaultSpec):
    """Flatline a share of the monitored resource streams (dead exporter).

    Among streams matching ``pattern``, the rng selects
    ``ceil(fraction × count)`` and zeroes every sample value.
    """

    fraction: float = 1.0
    pattern: str = "*"
    name = "zero_resource"

    def __post_init__(self) -> None:
        _check_fraction(self.fraction, "zero_resource fraction")

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        matching = [r for r in artifacts.resources() if fnmatch.fnmatch(r, self.pattern)]
        if not matching or self.fraction == 0.0:
            return
        n = min(len(matching), math.ceil(len(matching) * self.fraction))
        chosen = set(rng.sample(sorted(matching), n))
        for row in artifacts.monitoring:
            if row[0] in chosen:
                row[3] = 0.0


@dataclass(frozen=True)
class DropPhaseBoundaries(FaultSpec):
    """Delete a fraction of phase-boundary events (lost instrumentation).

    ``kind`` selects which boundaries are at risk: ``"start"``, ``"end"``,
    or ``"both"``.  Dropped starts orphan their children (the parser
    promotes them to top-level); dropped ends leave phases open until the
    log horizon.
    """

    fraction: float = 0.1
    kind: str = "both"
    name = "drop_phase_boundaries"

    def __post_init__(self) -> None:
        _check_fraction(self.fraction, "drop_phase_boundaries fraction")
        if self.kind not in ("start", "end", "both"):
            raise FaultError(
                f"drop_phase_boundaries kind must be start|end|both, got {self.kind!r}"
            )

    def apply(self, artifacts: ArchiveArtifacts, rng: random.Random) -> None:
        if self.fraction == 0.0:
            return
        at_risk = {
            "start": ("phase_start",),
            "end": ("phase_end",),
            "both": ("phase_start", "phase_end"),
        }[self.kind]
        artifacts.events = [
            ev
            for ev in artifacts.events
            if not (ev.get("event") in at_risk and rng.random() < self.fraction)
        ]


#: Registry of shipped fault types, keyed by CLI/grid name.
FAULTS: dict[str, type[FaultSpec]] = {
    cls.name: cls
    for cls in (
        DropSamples,
        DuplicateSamples,
        TruncateLog,
        ReorderEvents,
        ClockSkew,
        ZeroResource,
        DropPhaseBoundaries,
    )
}


def fault_names() -> tuple[str, ...]:
    """The shipped fault types, in registry order."""
    return tuple(FAULTS)


def fault_at(name: str, severity: float) -> FaultSpec:
    """Construct a fault at a normalized severity in ``[0, 1]``.

    Severity maps onto each fault's natural magnitude parameter: a
    drop/duplicate/truncate/boundary fraction, the reorder window
    (``1 + severity × 20`` positions), the skew offset
    (``severity × 1 s``), or the share of zeroed streams.
    """
    if name not in FAULTS:
        raise FaultError(f"unknown fault {name!r}; available: {', '.join(FAULTS)}")
    if not 0.0 <= severity <= 1.0:
        raise FaultError(f"severity must be in [0, 1], got {severity}")
    if name == "reorder_events":
        return ReorderEvents(window=1 + round(severity * 20))
    if name == "clock_skew":
        return ClockSkew(delta=severity * 1.0)
    return FAULTS[name](fraction=severity)  # type: ignore[call-arg]


def parse_fault(text: str) -> FaultSpec:
    """Parse a CLI fault descriptor: ``name`` or ``name:severity``."""
    name, sep, severity = text.partition(":")
    name = name.strip().replace("-", "_")
    if not sep:
        return fault_at(name, 0.3)
    try:
        value = float(severity)
    except ValueError:
        raise FaultError(f"bad severity {severity!r} in fault {text!r}") from None
    return fault_at(name, value)


# ---------------------------------------------------------------------- #
# Applying faults to archives
# ---------------------------------------------------------------------- #


def apply_faults(
    source: str | Path,
    dest: str | Path,
    faults: Sequence[FaultSpec],
    *,
    seed: int = 0,
) -> Path:
    """Write a perturbed copy of ``source`` to ``dest``.

    Faults are applied in order; each draws from an independent rng
    derived from ``(seed, position, name)``, so the result is a pure
    function of (source bytes, fault list, seed).  The source archive is
    never modified.
    """
    source, dest = Path(source), Path(dest)
    if source.resolve() == dest.resolve():
        raise FaultError("fault injection must not overwrite the source archive")
    artifacts = read_artifacts(source)
    for i, fault in enumerate(faults):
        rng = random.Random(derive_cell_seed(seed, f"fault:{i}:{fault.name}"))
        fault.apply(artifacts, rng)
    write_artifacts(artifacts, dest)
    (dest / PROVENANCE_FILE).write_text(
        json.dumps(
            {
                "seed": seed,
                "source": str(source),
                "faults": [{"name": f.name, "params": f.params()} for f in faults],
            },
            indent=2,
        )
    )
    return dest


# ---------------------------------------------------------------------- #
# Fault grid: fault type × severity, through the parallel engine
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FaultGridCell:
    """Outcome of analyzing one perturbed archive.

    ``outcome`` is ``"ok"`` (clean profile, all invariants hold),
    ``"violations"`` (profile produced, invariant checker reported), or
    ``"error"`` (analysis refused with a typed :class:`ArchiveError`).
    """

    fault: str
    severity: float
    outcome: str
    detail: str = ""
    invariants: tuple[str, ...] = ()
    n_violations: int = 0

    @property
    def label(self) -> str:
        return f"{self.fault}@{self.severity:g}"


def _fault_grid_cell(
    archive: str, work_dir: str, name: str, severity: float, seed: int
) -> FaultGridCell:
    """One grid cell: perturb, analyze, check invariants (picklable)."""
    from .workloads.archive import characterize_archive

    dest = Path(work_dir) / f"{name}-{severity:g}"
    label = f"{name}@{severity:g}"
    progress.publish("cell.started", label, seed=seed)
    with obs.span("fault.perturb", fault=name, severity=severity):
        apply_faults(archive, dest, [fault_at(name, severity)], seed=seed)
    try:
        with obs.span("fault.analyze", fault=name, severity=severity):
            profile = characterize_archive(dest)
    except ArchiveError as exc:
        obs.counter("faults.error")
        progress.publish("cell.finished", label, outcome="error")
        _LOG.debug("fault cell errored", fault=name, severity=severity,
                   error=f"{type(exc).__name__}: {exc}")
        return FaultGridCell(
            fault=name,
            severity=severity,
            outcome="error",
            detail=f"{type(exc).__name__}: {exc}",
        )
    report = profile.check_invariants()
    progress.publish(
        "cell.finished", label,
        outcome="ok" if report.ok else "violations",
    )
    _LOG.debug("fault cell analyzed", fault=name, severity=severity,
               outcome="ok" if report.ok else "violations")
    if report.ok:
        obs.counter("faults.ok")
        return FaultGridCell(fault=name, severity=severity, outcome="ok")
    obs.counter("faults.violations")
    return FaultGridCell(
        fault=name,
        severity=severity,
        outcome="violations",
        detail=report.violations[0].message,
        invariants=tuple(sorted(report.summary())),
        n_violations=len(report),
    )


def run_fault_grid(
    archive: str | Path,
    *,
    faults: Sequence[str] | None = None,
    severities: Sequence[float] = (0.1, 0.3, 0.5),
    seed: int = 0,
    jobs: int = 1,
    work_dir: str | Path | None = None,
) -> list[FaultGridCell]:
    """Sweep fault type × severity over one archive and classify outcomes.

    Cells fan out across :func:`repro.parallel.parallel_map`; results come
    back in (fault, severity) input order.  ``work_dir`` receives the
    perturbed archive copies (a temp directory, cleaned up afterwards,
    when omitted).
    """
    names = list(faults) if faults is not None else list(fault_names())
    for name in names:
        if name not in FAULTS:
            raise FaultError(f"unknown fault {name!r}; available: {', '.join(FAULTS)}")
    archive = str(archive)

    def sweep(directory: str) -> list[FaultGridCell]:
        tasks = [
            (archive, directory, name, float(severity), seed)
            for name in names
            for severity in severities
        ]
        return parallel_map(_fault_grid_cell, tasks, jobs=jobs)

    if work_dir is not None:
        Path(work_dir).mkdir(parents=True, exist_ok=True)
        return sweep(str(work_dir))
    with tempfile.TemporaryDirectory(prefix="fault-grid-") as tmp:
        return sweep(tmp)
