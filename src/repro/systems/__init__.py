"""Simulated distributed graph processing systems.

Two engines mirror the paper's systems under test:

* :mod:`repro.systems.giraph` — BSP supersteps, edge-cut partitioning,
  bounded message queues, a managed runtime with stop-the-world GC;
* :mod:`repro.systems.powergraph` — GAS steps, vertex-cut partitioning,
  interleaved communication, no GC, and the injectable §IV-D sync bug.

Both consume a real algorithm's activity profile and a real graph, and
emit structured JSONL logs plus machine metrics — the same artifacts a
real deployment hands to Grade10.
"""

from .bugs import SyncBug
from .gc import GarbageCollector
from .giraph import GiraphConfig, GiraphRun, run_giraph
from .logging import EventLog, PhaseHandle, read_jsonl, write_jsonl
from .powergraph import PowerGraphConfig, PowerGraphRun, run_powergraph
from .queues import BoundedMessageQueue

__all__ = [
    "SyncBug",
    "GarbageCollector",
    "GiraphConfig",
    "GiraphRun",
    "run_giraph",
    "EventLog",
    "PhaseHandle",
    "read_jsonl",
    "write_jsonl",
    "PowerGraphConfig",
    "PowerGraphRun",
    "run_powergraph",
    "BoundedMessageQueue",
]
