"""Structured execution logging for the simulated systems.

The simulated frameworks emit the same artifact a real instrumented
framework would: a JSON-lines event log with timestamps for performance
critical events (paper §III-C).  Event kinds:

* ``phase_start`` / ``phase_end`` — with phase path, instance id, parent
  instance id, and location attributes (machine / worker / thread);
* ``block_start`` / ``block_end`` — a phase instance blocked on a blocking
  resource (message queue, GC);
* ``gc`` — a stop-the-world collection on a machine (interval + machine),
  from which a *tuned* model derives GC phases and blocking events.

:class:`EventLog` is the in-memory collector; :func:`write_jsonl` /
:func:`read_jsonl` persist it.  The adapters in :mod:`repro.adapters`
parse these events into Grade10 traces — the same decoupling the real tool
has from the systems it measures.
"""

from __future__ import annotations

import io
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = ["PhaseHandle", "EventLog", "write_jsonl", "read_jsonl"]


@dataclass(frozen=True)
class PhaseHandle:
    """Opaque reference to an open phase instance in the log."""

    instance_id: str
    phase_path: str


@dataclass
class EventLog:
    """In-memory structured event log."""

    events: list[dict[str, Any]] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def start_phase(
        self,
        path: str,
        t: float,
        *,
        parent: PhaseHandle | None = None,
        machine: str | None = None,
        worker: str | None = None,
        thread: str | None = None,
        depends_on: list[PhaseHandle] | None = None,
    ) -> PhaseHandle:
        """Open a phase instance; returns the handle used to close/block it."""
        instance_id = f"{path}#{next(self._counter)}"
        event = {
            "event": "phase_start",
            "path": path,
            "id": instance_id,
            "parent": parent.instance_id if parent else None,
            "machine": machine,
            "worker": worker,
            "thread": thread,
            "t": t,
        }
        if depends_on:
            event["depends_on"] = [h.instance_id for h in depends_on]
        self.events.append(event)
        return PhaseHandle(instance_id, path)

    def end_phase(self, handle: PhaseHandle, t: float) -> None:
        """Close an open phase instance at time ``t``."""
        self.events.append({"event": "phase_end", "id": handle.instance_id, "t": t})

    def block(self, handle: PhaseHandle, resource: str, t_start: float, t_end: float) -> None:
        """Record a blocking interval of an open phase on a resource."""
        self.events.append(
            {
                "event": "block_start",
                "id": handle.instance_id,
                "resource": resource,
                "t": t_start,
            }
        )
        self.events.append(
            {
                "event": "block_end",
                "id": handle.instance_id,
                "resource": resource,
                "t": t_end,
            }
        )

    def gc_event(self, machine: str, t_start: float, t_end: float) -> None:
        """Record a stop-the-world collection interval on ``machine``."""
        self.events.append({"event": "gc", "machine": machine, "t": t_start, "t_end": t_end})

    def custom(self, **fields: Any) -> None:
        """Emit an arbitrary event (extension point for new systems)."""
        if "event" not in fields:
            raise ValueError("custom events need an 'event' field")
        self.events.append(fields)

    # ------------------------------------------------------------------ #
    # Queries (mostly for tests)
    # ------------------------------------------------------------------ #
    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All events of one kind, in emission order."""
        return [e for e in self.events if e["event"] == kind]

    def __len__(self) -> int:
        return len(self.events)


def write_jsonl(log: EventLog | Iterable[dict[str, Any]], path: str | Path | io.TextIOBase) -> None:
    """Persist events as JSON lines."""
    events = log.events if isinstance(log, EventLog) else log
    own = isinstance(path, (str, Path))
    fh = open(path, "w") if own else path
    try:
        for event in events:
            fh.write(json.dumps(event, separators=(",", ":")) + "\n")
    finally:
        if own:
            fh.close()


def read_jsonl(path: str | Path | io.TextIOBase) -> EventLog:
    """Load a JSON-lines event log."""
    own = isinstance(path, (str, Path))
    fh = open(path, "r") if own else path
    log = EventLog()
    try:
        for line in fh:
            line = line.strip()
            if line:
                log.events.append(json.loads(line))
    finally:
        if own:
            fh.close()
    return log
