"""Structured execution logging for the simulated systems.

The simulated frameworks emit the same artifact a real instrumented
framework would: a JSON-lines event log with timestamps for performance
critical events (paper §III-C).  Event kinds:

* ``phase_start`` / ``phase_end`` — with phase path, instance id, parent
  instance id, and location attributes (machine / worker / thread);
* ``block_start`` / ``block_end`` — a phase instance blocked on a blocking
  resource (message queue, GC);
* ``gc`` — a stop-the-world collection on a machine (interval + machine),
  from which a *tuned* model derives GC phases and blocking events.

:class:`EventLog` is the in-memory collector; :func:`write_jsonl` /
:func:`read_jsonl` persist it.  :func:`iter_jsonl` is the streaming
variant (events are yielded as they are read, tolerating a mid-write
partial trailing line), and :class:`JsonlStream` is the chunk-level
decoder it is built on — the entry point for feeding a log to the
incremental pipeline (:mod:`repro.core.incremental`) as raw text chunks
arrive.  The adapters in :mod:`repro.adapters` parse these events into
Grade10 traces — the same decoupling the real tool has from the systems
it measures.
"""

from __future__ import annotations

import io
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = [
    "PhaseHandle",
    "EventLog",
    "JsonlStream",
    "write_jsonl",
    "read_jsonl",
    "iter_jsonl",
]


@dataclass(frozen=True)
class PhaseHandle:
    """Opaque reference to an open phase instance in the log."""

    instance_id: str
    phase_path: str


@dataclass
class EventLog:
    """In-memory structured event log."""

    events: list[dict[str, Any]] = field(default_factory=list)
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def start_phase(
        self,
        path: str,
        t: float,
        *,
        parent: PhaseHandle | None = None,
        machine: str | None = None,
        worker: str | None = None,
        thread: str | None = None,
        depends_on: list[PhaseHandle] | None = None,
    ) -> PhaseHandle:
        """Open a phase instance; returns the handle used to close/block it."""
        instance_id = f"{path}#{next(self._counter)}"
        event = {
            "event": "phase_start",
            "path": path,
            "id": instance_id,
            "parent": parent.instance_id if parent else None,
            "machine": machine,
            "worker": worker,
            "thread": thread,
            "t": t,
        }
        if depends_on:
            event["depends_on"] = [h.instance_id for h in depends_on]
        self.events.append(event)
        return PhaseHandle(instance_id, path)

    def end_phase(self, handle: PhaseHandle, t: float) -> None:
        """Close an open phase instance at time ``t``."""
        self.events.append({"event": "phase_end", "id": handle.instance_id, "t": t})

    def block(self, handle: PhaseHandle, resource: str, t_start: float, t_end: float) -> None:
        """Record a blocking interval of an open phase on a resource."""
        self.events.append(
            {
                "event": "block_start",
                "id": handle.instance_id,
                "resource": resource,
                "t": t_start,
            }
        )
        self.events.append(
            {
                "event": "block_end",
                "id": handle.instance_id,
                "resource": resource,
                "t": t_end,
            }
        )

    def gc_event(self, machine: str, t_start: float, t_end: float) -> None:
        """Record a stop-the-world collection interval on ``machine``."""
        self.events.append({"event": "gc", "machine": machine, "t": t_start, "t_end": t_end})

    def custom(self, **fields: Any) -> None:
        """Emit an arbitrary event (extension point for new systems)."""
        if "event" not in fields:
            raise ValueError("custom events need an 'event' field")
        self.events.append(fields)

    # ------------------------------------------------------------------ #
    # Queries (mostly for tests)
    # ------------------------------------------------------------------ #
    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        """All events of one kind, in emission order."""
        return [e for e in self.events if e["event"] == kind]

    def __len__(self) -> int:
        return len(self.events)


def write_jsonl(log: EventLog | Iterable[dict[str, Any]], path: str | Path | io.TextIOBase) -> None:
    """Persist events as JSON lines."""
    events = log.events if isinstance(log, EventLog) else log
    own = isinstance(path, (str, Path))
    fh = open(path, "w") if own else path
    try:
        for event in events:
            fh.write(json.dumps(event, separators=(",", ":")) + "\n")
    finally:
        if own:
            fh.close()


class JsonlStream:
    """Incremental JSON-lines decoder for arbitrarily split text chunks.

    :meth:`feed` accepts any slicing of a JSONL stream — including chunks
    that split a record mid-byte — buffers the unterminated tail, and
    returns the newly completed events.  Only newline-terminated lines
    are ever parsed, so a fragment is never mistaken for a corrupt
    record; a *terminated* line that fails to parse raises, exactly like
    :func:`read_jsonl` on an interior malformed line.
    """

    def __init__(self) -> None:
        self._tail = ""

    @property
    def pending(self) -> str:
        """The buffered unterminated fragment (empty between records)."""
        return self._tail

    def feed(self, chunk: str | bytes) -> list[dict[str, Any]]:
        """Decode one chunk; returns the events it completed (maybe none)."""
        if isinstance(chunk, bytes):
            chunk = chunk.decode("utf-8")
        buf = self._tail + chunk
        lines = buf.split("\n")
        self._tail = lines.pop()  # "" when the chunk ended on a newline
        events = []
        for line in lines:
            line = line.strip()
            if line:
                events.append(json.loads(line))
        return events

    def close(self) -> list[dict[str, Any]]:
        """Flush the buffer at end of stream.

        A leftover fragment that parses as JSON (the writer omitted the
        final newline) is returned; one that does not (the write was torn
        mid-record) is dropped — the same tolerance as
        :func:`read_jsonl`.
        """
        tail, self._tail = self._tail.strip(), ""
        if not tail:
            return []
        try:
            return [json.loads(tail)]
        except json.JSONDecodeError:
            return []


def iter_jsonl(path: str | Path | io.TextIOBase, *, chunk_size: int = 65536) -> Iterator[dict[str, Any]]:
    """Stream events from a JSON-lines log as they are read.

    Unlike :func:`read_jsonl` nothing is materialized: events are yielded
    one at a time, so a follower can consume a log that is still being
    written.  A partial trailing line (a torn mid-write tail) is
    tolerated — buffered by the underlying :class:`JsonlStream` and
    dropped at end of stream unless it parses as a complete record.
    """
    own = isinstance(path, (str, Path))
    fh = open(path, "r") if own else path
    stream = JsonlStream()
    try:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            yield from stream.feed(chunk)
        yield from stream.close()
    finally:
        if own:
            fh.close()


def read_jsonl(path: str | Path | io.TextIOBase, *, strict: bool = False) -> EventLog:
    """Load a JSON-lines event log.

    Interior malformed lines raise (silent data loss would corrupt the
    analysis), but a *partial trailing line* — what a reader sees when it
    races a writer mid-record — is dropped instead: only
    newline-terminated lines are required to parse.

    With ``strict=True`` an unparseable torn tail raises ``ValueError``
    instead of being dropped.  :func:`write_jsonl` always terminates the
    final record, so in a sealed archive a torn tail is not a racing
    writer — it is byte-level truncation, and dropping it would silently
    analyze a different run.
    """
    log = EventLog()
    own = isinstance(path, (str, Path))
    fh = open(path, "r") if own else path
    stream = JsonlStream()
    try:
        while True:
            chunk = fh.read(65536)
            if not chunk:
                break
            log.events.extend(stream.feed(chunk))
        pending = stream.pending
        flushed = stream.close()
        if strict and pending and not flushed:
            raise ValueError(
                f"truncated JSONL log: unterminated trailing line {pending[:80]!r}"
            )
        log.events.extend(flushed)
    finally:
        if own:
            fh.close()
    return log
