"""Giraph-like BSP engine simulation.

Executes a real algorithm's per-iteration work profile (from
:mod:`repro.algorithms`) on a simulated cluster, with the architectural
traits that drive Giraph's performance behaviour in the paper:

* **BSP supersteps** — per superstep, every worker (machine) runs a
  ``Prepare`` step, a set of parallel ``ComputeThread`` phases (one per
  core), and a ``Communicate`` phase that drains outbound messages; a
  global ``WorkerBarrier`` closes the superstep.
* **Hash edge-cut partitioning** — vertices hashed onto workers; the
  degree skew of real graphs makes per-thread work unequal (imbalance).
* **Bounded message queues** — producers stall when the network cannot
  keep up (the ``queue@…`` blocking bottleneck of Figure 4).
* **Managed runtime** — a stop-the-world GC with safepoints
  (:mod:`repro.systems.gc`): the ``gc@…`` blocking bottleneck, absent in
  the PowerGraph simulation.

The run emits a structured event log and machine-level metrics through the
shared recorder — the only artifacts Grade10 sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algorithms.base import AlgorithmResult
from ..cluster.machine import Cluster
from ..cluster.metrics import MetricsRecorder
from ..graph.graph import Graph
from ..graph.partition import EdgeCutPartition, hash_edge_cut
from .gc import GarbageCollector
from .logging import EventLog, PhaseHandle
from .queues import BoundedMessageQueue

__all__ = ["GiraphConfig", "GiraphRun", "run_giraph"]


@dataclass
class GiraphConfig:
    """Tunable constants of the simulated Giraph deployment."""

    n_machines: int = 4
    threads_per_machine: int = 4
    # Slightly under-provisioned relative to message production, like the
    # paper's cluster: Giraph's communication subsystem is its bottleneck.
    net_bandwidth: float = 50e6  # bytes/s per machine egress
    # Compute costs (seconds).
    cost_per_edge: float = 4e-6
    cost_per_vertex: float = 1e-6
    prepare_cost: float = 0.01
    load_cost_per_edge: float = 1.2e-6
    store_cost_per_vertex: float = 1.5e-6
    # Messaging.
    bytes_per_message: float = 100.0
    # Fraction of messages surviving the combiner (1.0 = no combining).
    # Giraph combiners merge messages to the same destination before they
    # are queued, trading CPU for network volume.
    combiner_ratio: float = 1.0
    chunk_vertices: int = 256
    # Graph partitions handed to each compute thread; > 1 enables Giraph's
    # dynamic partition-pull scheduling (finer load balancing).
    partitions_per_thread: int = 1
    queue_capacity_bytes: float = 2e6
    drain_chunk_bytes: float = 1e6
    # Garbage collection.
    alloc_per_message: float = 150.0
    alloc_per_vertex: float = 64.0
    young_gen_bytes: float = 12e6
    gc_base_pause: float = 0.03
    gc_pause_per_byte: float = 2.0e-10
    gc_enabled: bool = True
    # Per-chunk effective CPU utilization range (memory stalls): the tuned
    # model assumes exactly one core per thread, so this is the model
    # mismatch that drives Table II's residual error.
    cpu_efficiency_min: float = 0.93
    cpu_efficiency_max: float = 1.0
    # Record per-phase-instance CPU ground truth into a side recorder.
    # The paper could not validate per-phase attribution against a ground
    # truth (§IV-B); the simulator can — see bench_validation_attribution.
    record_per_phase_truth: bool = False

    def __post_init__(self) -> None:
        if self.n_machines <= 0:
            raise ValueError("n_machines must be > 0")
        if self.threads_per_machine <= 0:
            raise ValueError("threads_per_machine must be > 0")
        if self.chunk_vertices <= 0:
            raise ValueError("chunk_vertices must be > 0")
        if not 0.0 < self.combiner_ratio <= 1.0:
            raise ValueError("combiner_ratio must be in (0, 1]")
        if self.partitions_per_thread < 1:
            raise ValueError("partitions_per_thread must be >= 1")


@dataclass
class GiraphRun:
    """Artifacts of one simulated Giraph job."""

    config: GiraphConfig
    log: EventLog
    recorder: MetricsRecorder
    partition: EdgeCutPartition
    makespan: float
    n_supersteps: int
    gc_collections: int = 0
    queue_stall_time: float = 0.0
    machine_names: list[str] = field(default_factory=list)
    #: per-instance CPU ground truth (resource name = instance id), only
    #: populated when ``config.record_per_phase_truth`` is set
    truth_recorder: MetricsRecorder | None = None


def _per_thread_work(
    active_ids: np.ndarray,
    out_deg: np.ndarray,
    remote_out: np.ndarray,
    n_threads: int,
    partitions_per_thread: int = 1,
) -> list[tuple[int, float, float]]:
    """Split a worker's active vertices over threads.

    Returns per-thread ``(n_vertices, n_edges, n_remote_edges)``.  Giraph
    divides each worker's vertices into graph *partitions* and its compute
    threads pull whole partitions from a shared queue — so the unit of
    imbalance is a partition, and more partitions per thread means finer
    dynamic load balancing at the cost of scheduling overhead.

    With ``partitions_per_thread == 1`` every thread owns one contiguous
    range (maximal skew exposure).  With more, partitions are dealt
    greedily to the least-loaded thread in descending size order (an LPT
    approximation of Giraph's pull scheduling).
    """
    n_partitions = max(n_threads * max(partitions_per_thread, 1), 1)
    chunks = [c for c in np.array_split(active_ids, n_partitions)]
    loads = [
        (
            int(c.size),
            float(out_deg[c].sum()) if c.size else 0.0,
            float(remote_out[c].sum()) if c.size else 0.0,
        )
        for c in chunks
    ]
    if partitions_per_thread <= 1:
        return loads
    # LPT: sort partitions by edge work, assign each to the lightest thread.
    threads = [[0, 0.0, 0.0] for _ in range(n_threads)]
    for n_v, n_e, n_r in sorted(loads, key=lambda t: -t[1]):
        tgt = min(range(n_threads), key=lambda k: threads[k][1])
        threads[tgt][0] += n_v
        threads[tgt][1] += n_e
        threads[tgt][2] += n_r
    return [(int(t[0]), t[1], t[2]) for t in threads]


def run_giraph(
    graph: Graph,
    algorithm: AlgorithmResult,
    config: GiraphConfig | None = None,
    *,
    partition: EdgeCutPartition | None = None,
    seed: int = 0,
) -> GiraphRun:
    """Simulate a Giraph job executing ``algorithm`` over ``graph``."""
    cfg = config or GiraphConfig()
    if partition is None:
        partition = hash_edge_cut(graph, cfg.n_machines, seed=seed)
    elif partition.n_partitions != cfg.n_machines:
        raise ValueError(
            f"partition has {partition.n_partitions} parts, config wants {cfg.n_machines}"
        )

    cluster = Cluster(
        cfg.n_machines, n_cores=cfg.threads_per_machine, net_bandwidth=cfg.net_bandwidth
    )
    sim, recorder = cluster.sim, cluster.recorder
    log = EventLog()
    rng = np.random.default_rng(seed + 0x5EED)
    truth = MetricsRecorder() if cfg.record_per_phase_truth else None

    owner = partition.owner
    src, dst = graph.edges()
    out_deg = np.asarray(graph.out_degree(), dtype=np.float64)
    remote_mask = owner[src] != owner[dst]
    remote_out = np.bincount(
        src, weights=remote_mask.astype(np.float64), minlength=graph.n_vertices
    )

    queues = [
        BoundedMessageQueue(
            sim,
            m,
            capacity_bytes=cfg.queue_capacity_bytes,
            drain_chunk_bytes=cfg.drain_chunk_bytes,
        )
        for m in cluster
    ]
    gcs = [
        GarbageCollector(
            sim,
            m,
            recorder,
            log,
            young_gen_bytes=cfg.young_gen_bytes,
            base_pause=cfg.gc_base_pause,
            pause_per_byte=cfg.gc_pause_per_byte,
        )
        if cfg.gc_enabled
        else None
        for m in cluster
    ]

    # Pre-compute the per-superstep, per-machine, per-thread work table from
    # the algorithm's actual activity profile.
    work_table: list[list[list[tuple[int, float, float]]]] = []
    for it in algorithm.iterations:
        per_machine = []
        active_idx = np.nonzero(it.active)[0]
        active_owner = owner[active_idx]
        for m in range(cfg.n_machines):
            ids = active_idx[active_owner == m]
            per_machine.append(
                _per_thread_work(
                    ids, out_deg, remote_out, cfg.threads_per_machine,
                    cfg.partitions_per_thread,
                )
            )
        work_table.append(per_machine)

    edges_per_machine = np.bincount(owner[src], minlength=cfg.n_machines).astype(float)
    vertices_per_machine = np.bincount(owner, minlength=cfg.n_machines).astype(float)

    barrier = sim.barrier(cfg.n_machines)
    load_barrier = sim.barrier(cfg.n_machines)
    store_barrier = sim.barrier(cfg.n_machines)

    # Shared mutable state for coordinating phase boundaries.
    state: dict[str, object] = {"makespan": 0.0, "queue_stalls": 0.0}

    def thread_proc(m: int, thread_idx: int, parent: PhaseHandle, work: tuple[int, float, float]):
        machine = cluster[m]
        gc = gcs[m]
        n_v, n_e, n_remote = work
        handle = log.start_phase(
            "/Execute/Superstep/Compute/ComputeThread",
            sim.now,
            parent=parent,
            machine=machine.name,
            worker=machine.name,
            thread=f"{machine.name}-t{thread_idx}",
        )
        if n_v > 0:
            n_chunks = max(1, n_v // cfg.chunk_vertices)
            dt = (cfg.cost_per_vertex * n_v + cfg.cost_per_edge * n_e) / n_chunks
            remote_bytes = cfg.bytes_per_message * n_remote * cfg.combiner_ratio / n_chunks
            alloc = (cfg.alloc_per_vertex * n_v + cfg.alloc_per_message * n_e) / n_chunks
            # Effective CPU utilization is correlated over a thread's
            # superstep (cache behaviour depends on the data it processes),
            # with small per-chunk jitter.  Correlated mismatch is what
            # coarse monitoring windows genuinely lose — the reason
            # Table II's error grows with the upsampling ratio.
            eff_base = rng.uniform(cfg.cpu_efficiency_min, cfg.cpu_efficiency_max)
            for _ in range(n_chunks):
                # Safepoint: join any in-progress stop-the-world pause.
                if gc is not None:
                    until = gc.safepoint()
                    if until > sim.now:
                        log.block(handle, gc.resource_name, sim.now, until)
                        yield sim.timeout(until - sim.now)
                eff = float(np.clip(eff_base + rng.uniform(-0.05, 0.05), 0.05, 1.0))
                if truth is not None:
                    truth.record(handle.instance_id, sim.now, sim.now + dt, eff)
                yield machine.work(dt, cpu_rate=eff)
                if gc is not None:
                    until = gc.allocate(alloc)
                    if until > sim.now:
                        log.block(handle, gc.resource_name, sim.now, until)
                        yield sim.timeout(until - sim.now)
                if remote_bytes > 0:
                    t0 = sim.now
                    stall = yield from queues[m].put(remote_bytes)
                    if stall > 0:
                        log.block(handle, queues[m].resource_name, t0, sim.now)
        log.end_phase(handle, sim.now)

    def worker_superstep(m: int, s: int, ss_handle: PhaseHandle):
        machine = cluster[m]
        prep = log.start_phase(
            "/Execute/Superstep/Prepare",
            sim.now,
            parent=ss_handle,
            machine=machine.name,
            worker=machine.name,
        )
        yield machine.work(cfg.prepare_cost)
        log.end_phase(prep, sim.now)

        compute = log.start_phase(
            "/Execute/Superstep/Compute",
            sim.now,
            parent=ss_handle,
            machine=machine.name,
            worker=machine.name,
        )
        communicate = log.start_phase(
            "/Execute/Superstep/Communicate",
            sim.now,
            parent=ss_handle,
            machine=machine.name,
            worker=machine.name,
        )
        threads = [
            sim.process(thread_proc(m, t, compute, work))
            for t, work in enumerate(work_table[s][m])
        ]
        for p in threads:
            yield p.completion
        log.end_phase(compute, sim.now)
        log.end_phase(communicate, sim.now)
        # Flush: the superstep's remaining outbound traffic must drain
        # before the barrier releases (BSP message delivery guarantee).
        flush = log.start_phase(
            "/Execute/Superstep/Flush",
            sim.now,
            parent=ss_handle,
            machine=machine.name,
            worker=machine.name,
        )
        yield queues[m].drained()
        log.end_phase(flush, sim.now)

        wb = log.start_phase(
            "/Execute/Superstep/WorkerBarrier",
            sim.now,
            parent=ss_handle,
            machine=machine.name,
            worker=machine.name,
        )
        yield barrier.arrive()
        log.end_phase(wb, sim.now)

    def worker_load(m: int, parent: PhaseHandle):
        machine = cluster[m]
        handle = log.start_phase(
            "/Load/LoadWorker",
            sim.now,
            parent=parent,
            machine=machine.name,
            worker=machine.name,
        )
        yield machine.work(cfg.load_cost_per_edge * edges_per_machine[m])
        log.end_phase(handle, sim.now)
        yield load_barrier.arrive()

    def worker_store(m: int, parent: PhaseHandle):
        machine = cluster[m]
        handle = log.start_phase(
            "/Store/StoreWorker",
            sim.now,
            parent=parent,
            machine=machine.name,
            worker=machine.name,
        )
        yield machine.work(cfg.store_cost_per_vertex * vertices_per_machine[m])
        log.end_phase(handle, sim.now)
        yield store_barrier.arrive()

    def master():
        load = log.start_phase("/Load", sim.now)
        loaders = [sim.process(worker_load(m, load)) for m in range(cfg.n_machines)]
        for p in loaders:
            yield p.completion
        log.end_phase(load, sim.now)

        execute = log.start_phase("/Execute", sim.now)
        for s in range(len(work_table)):
            ss = log.start_phase("/Execute/Superstep", sim.now, parent=execute)
            workers = [sim.process(worker_superstep(m, s, ss)) for m in range(cfg.n_machines)]
            for p in workers:
                yield p.completion
            log.end_phase(ss, sim.now)
        log.end_phase(execute, sim.now)

        store = log.start_phase("/Store", sim.now)
        storers = [sim.process(worker_store(m, store)) for m in range(cfg.n_machines)]
        for p in storers:
            yield p.completion
        log.end_phase(store, sim.now)
        state["makespan"] = sim.now

    sim.process(master())
    sim.run()

    return GiraphRun(
        config=cfg,
        log=log,
        recorder=recorder,
        partition=partition,
        makespan=float(state["makespan"]),
        n_supersteps=len(work_table),
        gc_collections=sum(g.collections for g in gcs if g is not None),
        queue_stall_time=sum(q.total_stall_time for q in queues),
        machine_names=[m.name for m in cluster],
        truth_recorder=truth,
    )
