"""Injectable performance bugs.

The paper's §IV-D case study finds a synchronization bug in PowerGraph:
each worker thread interleaves computation with message handling; at the
end of a step all threads synchronize on a barrier — but occasionally one
thread discovers a late-arriving message stream after its siblings have
already passed the no-pending-messages check, and keeps draining messages
alone while every other thread idles at the barrier.  Affected steps slow
down by 1.10–2.50×, hitting ~20 % of non-trivial processing steps.

:class:`SyncBug` reproduces that behaviour as a seeded injection: with a
per-(machine, step) probability, one thread of the step receives an extra
solo message-draining stint sized relative to the step's normal thread
durations.  The injection is off by default and enabled per run, so every
experiment can ablate it (Figure 6 vs. a clean baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyncBug"]


@dataclass
class SyncBug:
    """Configuration and decision logic for the barrier sync bug."""

    enabled: bool = False
    probability: float = 0.15
    min_factor: float = 0.3
    max_factor: float = 1.6
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not 0.0 < self.min_factor <= self.max_factor:
            raise ValueError(
                f"need 0 < min_factor <= max_factor, got {self.min_factor}, {self.max_factor}"
            )
        self._rng = np.random.default_rng(self.seed)

    def draw(self, n_threads: int, typical_duration: float) -> tuple[int, float] | None:
        """Decide whether this step on this machine triggers the bug.

        Returns ``(victim_thread_index, extra_seconds)`` or ``None``.  The
        extra stint is a uniform multiple of the step's typical (median)
        thread duration, so slowdowns land in the paper's 1.1–2.5× band
        regardless of absolute scale.
        """
        if not self.enabled or n_threads <= 1 or typical_duration <= 0.0:
            return None
        if self._rng.random() >= self.probability:
            return None
        victim = int(self._rng.integers(0, n_threads))
        factor = float(self._rng.uniform(self.min_factor, self.max_factor))
        return victim, factor * typical_duration
