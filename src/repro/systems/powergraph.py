"""PowerGraph-like GAS engine simulation.

Executes an algorithm's per-iteration activity profile with PowerGraph's
architecture, contrasting with the Giraph simulation in exactly the ways
the paper measures:

* **Vertex-cut partitioning** — edges placed on machines, vertices
  replicated (master + mirrors);
* **Gather / Apply / Scatter steps** per iteration, each run by per-core
  worker threads over the machine's local edges/masters;
* **Interleaved computation and communication** — threads never stall on
  explicit queues, and there is **no garbage collector** (C++ runtime), so
  neither blocking resource exists in PowerGraph runs (Figure 4's
  cross-system contrast);
* a small non-CPU **engine overhead** per work chunk (fine-grained lock
  waits), which keeps CPU utilization below saturation — the paper's
  observation that PowerGraph fails to use all compute resources;
* **mirror synchronization** after Scatter: each machine ships activated
  mirror state through its NIC and all machines meet at a barrier
  (``Sync`` phases);
* the optional **barrier synchronization bug** (:mod:`repro.systems.bugs`)
  that occasionally keeps one thread draining messages while its siblings
  idle — the §IV-D discovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algorithms.base import AlgorithmResult
from ..cluster.machine import Cluster
from ..cluster.metrics import MetricsRecorder
from ..graph.graph import Graph
from ..graph.partition import VertexCutPartition, grid_vertex_cut
from .bugs import SyncBug
from .logging import EventLog, PhaseHandle

__all__ = ["PowerGraphConfig", "PowerGraphRun", "run_powergraph"]


@dataclass
class PowerGraphConfig:
    """Tunable constants of the simulated PowerGraph deployment."""

    n_machines: int = 4
    threads_per_machine: int = 4
    net_bandwidth: float = 50e6
    # Compute costs (seconds).
    gather_cost_per_edge: float = 3e-6
    apply_cost_per_vertex: float = 2e-6
    scatter_cost_per_edge: float = 1.5e-6
    load_cost_per_edge: float = 1.0e-6
    # Engine overhead: non-CPU time per work chunk (lock waits, scheduling).
    overhead_per_chunk: float = 0.002
    chunk_edges: int = 2048
    # Mirror synchronization.
    bytes_per_mirror_sync: float = 150.0
    # Per-chunk effective CPU utilization range (memory stalls).
    cpu_efficiency_min: float = 0.93
    cpu_efficiency_max: float = 1.0
    # Value-dependent gather cost: CDLP-style algorithms build per-vertex
    # neighbor-label histograms, so gather work grows superlinearly with
    # degree — the amplifier behind the paper's Figure 5/6 hub imbalance.
    gather_superlinear: bool = False
    # Record per-phase-instance CPU ground truth into a side recorder
    # (see the Giraph engine and bench_validation_attribution).
    record_per_phase_truth: bool = False
    # Injectable §IV-D synchronization bug.
    sync_bug: SyncBug = field(default_factory=SyncBug)

    def __post_init__(self) -> None:
        if self.n_machines <= 0:
            raise ValueError("n_machines must be > 0")
        if self.threads_per_machine <= 0:
            raise ValueError("threads_per_machine must be > 0")
        if self.chunk_edges <= 0:
            raise ValueError("chunk_edges must be > 0")


@dataclass
class PowerGraphRun:
    """Artifacts of one simulated PowerGraph job."""

    config: PowerGraphConfig
    log: EventLog
    recorder: MetricsRecorder
    partition: VertexCutPartition
    makespan: float
    n_iterations: int
    bug_injections: int = 0
    machine_names: list[str] = field(default_factory=list)
    #: per-instance CPU ground truth (resource name = instance id), only
    #: populated when ``config.record_per_phase_truth`` is set
    truth_recorder: MetricsRecorder | None = None


def _split_counts(per_vertex_counts: np.ndarray, vertices: np.ndarray, n_threads: int) -> list[float]:
    """Assign vertices (with their local edge counts) to threads contiguously.

    PowerGraph hands each worker thread a contiguous range of local
    vertices; a vertex's edges cannot split across threads, so degree skew
    becomes thread imbalance.
    """
    chunks = np.array_split(vertices, n_threads)
    return [float(per_vertex_counts[c].sum()) if c.size else 0.0 for c in chunks]


def run_powergraph(
    graph: Graph,
    algorithm: AlgorithmResult,
    config: PowerGraphConfig | None = None,
    *,
    partition: VertexCutPartition | None = None,
    seed: int = 0,
) -> PowerGraphRun:
    """Simulate a PowerGraph job executing ``algorithm`` over ``graph``."""
    cfg = config or PowerGraphConfig()
    if partition is None:
        partition = grid_vertex_cut(graph, cfg.n_machines, seed=seed)
    elif partition.n_machines != cfg.n_machines:
        raise ValueError(
            f"partition has {partition.n_machines} machines, config wants {cfg.n_machines}"
        )

    cluster = Cluster(
        cfg.n_machines, n_cores=cfg.threads_per_machine, net_bandwidth=cfg.net_bandwidth
    )
    sim, recorder = cluster.sim, cluster.recorder
    log = EventLog()
    rng = np.random.default_rng(seed + 0x9A5)
    truth = MetricsRecorder() if cfg.record_per_phase_truth else None

    src, dst = graph.edges()
    n = graph.n_vertices
    edge_machine = partition.edge_machine
    master = partition.master

    # Per-machine local edge endpoints (for activity-driven work counts).
    local_src = [src[edge_machine == m] for m in range(cfg.n_machines)]
    local_dst = [dst[edge_machine == m] for m in range(cfg.n_machines)]
    # Vertex presence per machine, for mirror-sync volume.
    presence = np.zeros((cfg.n_machines, n), dtype=bool)
    for m in range(cfg.n_machines):
        presence[m, local_src[m]] = True
        presence[m, local_dst[m]] = True

    # Pre-compute per-iteration work: gather (in-edges of active), apply
    # (active masters), scatter (out-edges of active), sync (active mirrors).
    gather_work: list[list[list[float]]] = []
    scatter_work: list[list[list[float]]] = []
    apply_work: list[list[float]] = []
    sync_bytes: list[list[float]] = []
    for it in algorithm.iterations:
        active = it.active
        g_m, s_m, a_m, y_m = [], [], [], []
        active_masters = np.bincount(master[np.nonzero(active)[0]], minlength=cfg.n_machines)
        for m in range(cfg.n_machines):
            ld, ls = local_dst[m], local_src[m]
            g_counts = np.bincount(ld[active[ld]], minlength=n).astype(np.float64)
            s_counts = np.bincount(ls[active[ls]], minlength=n)
            if cfg.gather_superlinear:
                # Histogram-building gather: cost per vertex ~ d * log2(1+d).
                g_counts = g_counts * np.log2(1.0 + g_counts + 1e-12)
            g_vertices = np.nonzero(g_counts)[0]
            s_vertices = np.nonzero(s_counts)[0]
            g_m.append(_split_counts(g_counts, g_vertices, cfg.threads_per_machine))
            s_m.append(_split_counts(s_counts, s_vertices, cfg.threads_per_machine))
            a_m.append(float(active_masters[m]))
            mirrors = presence[m] & active & (master != m)
            y_m.append(float(np.count_nonzero(mirrors)) * cfg.bytes_per_mirror_sync)
        gather_work.append(g_m)
        scatter_work.append(s_m)
        apply_work.append(a_m)
        sync_bytes.append(y_m)

    edges_per_machine = np.bincount(edge_machine, minlength=cfg.n_machines).astype(float)
    barrier = sim.barrier(cfg.n_machines)
    load_barrier = sim.barrier(cfg.n_machines)
    state: dict[str, object] = {"makespan": 0.0, "bugs": 0}

    def step_thread(
        m: int,
        phase: str,
        thread_idx: int,
        parent: PhaseHandle,
        seconds: float,
        extra_solo: float = 0.0,
    ):
        """One worker thread of a Gather/Scatter step.

        ``extra_solo`` is the injected sync-bug stint: the thread keeps
        draining messages after its nominal work while siblings idle.
        """
        machine = cluster[m]
        handle = log.start_phase(
            phase,
            sim.now,
            parent=parent,
            machine=machine.name,
            worker=machine.name,
            thread=f"{machine.name}-t{thread_idx}",
        )
        if seconds > 0:
            n_chunks = max(1, int(seconds / (cfg.chunk_edges * cfg.gather_cost_per_edge)) or 1)
            dt = seconds / n_chunks
            # Correlated over the thread-step, jittered per chunk (see the
            # Giraph engine for why this drives Table II's ratio curve).
            eff_base = rng.uniform(cfg.cpu_efficiency_min, cfg.cpu_efficiency_max)
            for _ in range(n_chunks):
                eff = float(np.clip(eff_base + rng.uniform(-0.04, 0.04), 0.05, 1.0))
                if truth is not None:
                    truth.record(handle.instance_id, sim.now, sim.now + dt, eff)
                yield machine.work(dt, cpu_rate=eff)
                if cfg.overhead_per_chunk > 0:
                    # Fine-grained lock waits: wall time without CPU use.
                    yield sim.timeout(cfg.overhead_per_chunk)
        if extra_solo > 0:
            if truth is not None:
                truth.record(handle.instance_id, sim.now, sim.now + extra_solo, 1.0)
            yield machine.work(extra_solo)
        log.end_phase(handle, sim.now)

    def machine_iteration(m: int, it: int, iter_handle: PhaseHandle):
        machine = cluster[m]

        # ---- Gather step ------------------------------------------------
        per_thread = gather_work[it][m]
        durations = [cfg.gather_cost_per_edge * e for e in per_thread]
        extra = _bug_extras(cfg.sync_bug, durations, state)
        procs = [
            sim.process(
                step_thread(
                    m, "/Execute/Iteration/Gather", t, iter_handle, durations[t], extra.get(t, 0.0)
                )
            )
            for t in range(cfg.threads_per_machine)
        ]
        for p in procs:
            yield p.completion

        # ---- Apply step (masters only, split evenly over threads) -------
        apply_seconds = cfg.apply_cost_per_vertex * apply_work[it][m] / cfg.threads_per_machine
        procs = [
            sim.process(
                step_thread(m, "/Execute/Iteration/Apply", t, iter_handle, apply_seconds)
            )
            for t in range(cfg.threads_per_machine)
        ]
        for p in procs:
            yield p.completion

        # ---- Scatter step ------------------------------------------------
        per_thread = scatter_work[it][m]
        durations = [cfg.scatter_cost_per_edge * e for e in per_thread]
        extra = _bug_extras(cfg.sync_bug, durations, state)
        procs = [
            sim.process(
                step_thread(
                    m, "/Execute/Iteration/Scatter", t, iter_handle, durations[t], extra.get(t, 0.0)
                )
            )
            for t in range(cfg.threads_per_machine)
        ]
        for p in procs:
            yield p.completion

        # ---- Mirror synchronization, then the global barrier -------------
        sync = log.start_phase(
            "/Execute/Iteration/Sync",
            sim.now,
            parent=iter_handle,
            machine=machine.name,
            worker=machine.name,
        )
        yield machine.send(sync_bytes[it][m])
        log.end_phase(sync, sim.now)
        wait = log.start_phase(
            "/Execute/Iteration/SyncBarrier",
            sim.now,
            parent=iter_handle,
            machine=machine.name,
            worker=machine.name,
        )
        yield barrier.arrive()
        log.end_phase(wait, sim.now)

    def worker_load(m: int, parent: PhaseHandle):
        machine = cluster[m]
        handle = log.start_phase(
            "/Load/LoadWorker",
            sim.now,
            parent=parent,
            machine=machine.name,
            worker=machine.name,
        )
        yield machine.work(cfg.load_cost_per_edge * edges_per_machine[m])
        log.end_phase(handle, sim.now)
        yield load_barrier.arrive()

    def master_proc():
        load = log.start_phase("/Load", sim.now)
        loaders = [sim.process(worker_load(m, load)) for m in range(cfg.n_machines)]
        for p in loaders:
            yield p.completion
        log.end_phase(load, sim.now)

        execute = log.start_phase("/Execute", sim.now)
        for it in range(len(algorithm.iterations)):
            iter_handle = log.start_phase("/Execute/Iteration", sim.now, parent=execute)
            workers = [
                sim.process(machine_iteration(m, it, iter_handle))
                for m in range(cfg.n_machines)
            ]
            for p in workers:
                yield p.completion
            log.end_phase(iter_handle, sim.now)
        log.end_phase(execute, sim.now)
        state["makespan"] = sim.now

    sim.process(master_proc())
    sim.run()

    return PowerGraphRun(
        config=cfg,
        log=log,
        recorder=recorder,
        partition=partition,
        makespan=float(state["makespan"]),
        n_iterations=len(algorithm.iterations),
        bug_injections=int(state["bugs"]),
        machine_names=[m.name for m in cluster],
        truth_recorder=truth,
    )


def _bug_extras(bug: SyncBug, durations: list[float], state: dict) -> dict[int, float]:
    """Draw a sync-bug injection for one step on one machine."""
    positive = sorted(d for d in durations if d > 0)
    if not positive:
        return {}
    typical = positive[len(positive) // 2]
    drawn = bug.draw(len(durations), typical)
    if drawn is None:
        return {}
    victim, extra = drawn
    state["bugs"] = int(state["bugs"]) + 1
    return {victim: extra}
