"""JVM garbage-collector model for the Giraph simulation.

Giraph runs on a managed runtime; the paper's measurements show GC pauses
are a major Giraph-specific blocking resource (Figures 3 and 4), absent in
C++ PowerGraph.  The model is a stop-the-world collector with safepoints:

* compute threads report allocations (message buffers, vertex data);
* when allocation since the last collection exceeds the young-generation
  budget, the allocating thread triggers a collection: the world stops for
  ``base_pause + pause_per_byte × heap_used`` seconds;
* other threads stop at their next *safepoint* (the next chunk boundary at
  which they interact with the runtime), exactly like real JVM threads;
* the GC itself burns CPU (parallel collector threads), so machine-level
  CPU monitoring stays busy during a pause — which is precisely what
  confuses an *untuned* attribution model (Table II) and what a tuned
  model, knowing the GC events, attributes correctly.
"""

from __future__ import annotations

from ..cluster.events import Simulator
from ..cluster.machine import Machine
from ..cluster.metrics import MetricsRecorder
from .logging import EventLog

__all__ = ["GarbageCollector"]


class GarbageCollector:
    """Stop-the-world GC state for one machine."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        recorder: MetricsRecorder,
        log: EventLog,
        *,
        young_gen_bytes: float = 256e6,
        base_pause: float = 0.05,
        pause_per_byte: float = 2.0e-10,
        gc_cpu_fraction: float = 0.7,
    ) -> None:
        if young_gen_bytes <= 0:
            raise ValueError(f"young_gen_bytes must be > 0, got {young_gen_bytes}")
        self.sim = sim
        self.machine = machine
        self.recorder = recorder
        self.log = log
        self.young_gen_bytes = young_gen_bytes
        self.base_pause = base_pause
        self.pause_per_byte = pause_per_byte
        self.gc_cpu_fraction = gc_cpu_fraction
        self._allocated_since_gc = 0.0
        self._live_bytes = 0.0
        self._pause_until = 0.0
        self.collections = 0
        self.total_pause = 0.0

    @property
    def resource_name(self) -> str:
        return f"gc@{self.machine.name}"

    def allocate(self, n_bytes: float) -> float:
        """Report an allocation; returns the stop-the-world pause end time.

        A return value greater than ``sim.now`` means the world is stopped
        until then — the caller (and every thread hitting a safepoint) must
        wait.  Returns ``sim.now`` when no pause is in effect.
        """
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        self._allocated_since_gc += n_bytes
        # A fraction of allocations survives into the old generation.
        self._live_bytes += 0.1 * n_bytes
        now = self.sim.now
        if now < self._pause_until:
            return self._pause_until
        if self._allocated_since_gc >= self.young_gen_bytes:
            pause = self.base_pause + self.pause_per_byte * self._live_bytes
            self._pause_until = now + pause
            self._allocated_since_gc = 0.0
            self._live_bytes *= 0.5  # collection reclaims old-gen garbage too
            self.collections += 1
            self.total_pause += pause
            self.log.gc_event(self.machine.name, now, self._pause_until)
            if self.gc_cpu_fraction > 0.0:
                # Parallel collector threads keep the machine's cores busy.
                # The exact load varies per collection (a deterministic hash
                # of the collection count): the tuned model's fixed Exact
                # rule cannot capture it perfectly, as with any real GC.
                jitter = 0.8 + 0.4 * ((self.collections * 2654435761) % 97) / 97.0
                self.recorder.record(
                    self.machine.cpu_resource,
                    now,
                    self._pause_until,
                    min(self.machine.n_cores * self.gc_cpu_fraction * jitter, self.machine.n_cores),
                )
            return self._pause_until
        return now

    def safepoint(self) -> float:
        """Time until which the current thread must wait at a safepoint.

        Threads call this between work chunks; while a collection is in
        progress every safepoint arrival blocks until the pause ends.
        """
        return max(self._pause_until, self.sim.now)
