"""Spark-like DAG dataflow engine simulation (paper §V extension).

The paper's discussion section reports ongoing work extending Grade10 from
graph processing to broader DAG-based data processing systems such as
Spark.  This module provides that target: a deterministic simulation of a
stage/task dataflow engine with the characteristics that matter for
performance characterization:

* a **job** is a DAG of **stages**; a stage runs when all its parents have
  finished (instance-level dependencies — carried in the logs via
  ``depends_on`` and honoured by Grade10's replay simulator);
* each stage fans out into **tasks** executed by a fixed pool of executor
  cores per machine; tasks within a stage have skewed durations (seeded
  Zipf-like skew, the classic straggler source);
* **shuffle** edges ship each machine's stage output through its NIC
  before child tasks may start (the shuffle wall), producing the network
  phases Grade10 attributes;
* tasks never migrate between machines once queued (locality constraint).

A small workload library (:func:`wordcount_job`, :func:`join_job`,
:func:`etl_job`) builds representative jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.machine import Cluster
from ..cluster.metrics import MetricsRecorder
from .logging import EventLog, PhaseHandle

__all__ = [
    "StageSpec",
    "SparkLikeJob",
    "SparkLikeConfig",
    "SparkLikeRun",
    "run_sparklike",
    "wordcount_job",
    "join_job",
    "etl_job",
]


@dataclass(frozen=True)
class StageSpec:
    """One stage of a dataflow job.

    ``work`` is the stage's total compute demand in core-seconds, divided
    over ``n_tasks`` with multiplicative skew ``skew`` (1.0 = perfectly
    uniform; 3.0 means the heaviest task gets ~3× the mean).  ``shuffle_mb``
    is the per-machine output shipped over the network to children.
    """

    name: str
    n_tasks: int
    work: float
    parents: tuple[str, ...] = ()
    shuffle_mb: float = 0.0
    skew: float = 1.5

    def __post_init__(self) -> None:
        if self.n_tasks <= 0:
            raise ValueError(f"stage {self.name!r}: n_tasks must be > 0")
        if self.work < 0 or self.shuffle_mb < 0:
            raise ValueError(f"stage {self.name!r}: work/shuffle must be >= 0")
        if self.skew < 1.0:
            raise ValueError(f"stage {self.name!r}: skew must be >= 1.0")


@dataclass
class SparkLikeJob:
    """A named DAG of stages."""

    name: str
    stages: list[StageSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ValueError("duplicate stage names")
        known = set(names)
        for s in self.stages:
            for p in s.parents:
                if p not in known:
                    raise ValueError(f"stage {s.name!r} depends on unknown stage {p!r}")
        self._toposort()

    def _toposort(self) -> list[StageSpec]:
        by_name = {s.name: s for s in self.stages}
        indeg = {s.name: len(s.parents) for s in self.stages}
        children: dict[str, list[str]] = {s.name: [] for s in self.stages}
        for s in self.stages:
            for p in s.parents:
                children[p].append(s.name)
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[StageSpec] = []
        while ready:
            n = ready.pop(0)
            order.append(by_name[n])
            for c in sorted(children[n]):
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != len(self.stages):
            raise ValueError("cycle in stage DAG")
        return order

    @property
    def topological_stages(self) -> list[StageSpec]:
        return self._toposort()


@dataclass
class SparkLikeConfig:
    """Deployment constants of the simulated dataflow engine."""

    n_machines: int = 4
    cores_per_machine: int = 4
    net_bandwidth: float = 100e6
    scheduler_delay: float = 0.002  # per-task launch overhead
    cpu_efficiency_min: float = 0.93
    cpu_efficiency_max: float = 1.0

    def __post_init__(self) -> None:
        if self.n_machines <= 0 or self.cores_per_machine <= 0:
            raise ValueError("n_machines and cores_per_machine must be > 0")


@dataclass
class SparkLikeRun:
    """Artifacts of one simulated dataflow job."""

    config: SparkLikeConfig
    job: SparkLikeJob
    log: EventLog
    recorder: MetricsRecorder
    makespan: float
    machine_names: list[str] = field(default_factory=list)


def _task_durations(spec: StageSpec, rng: np.random.Generator) -> np.ndarray:
    """Skewed per-task durations summing to ``spec.work`` core-seconds."""
    weights = rng.pareto(2.5, size=spec.n_tasks) * (spec.skew - 1.0) + 1.0
    return spec.work * weights / weights.sum()


def run_sparklike(
    job: SparkLikeJob,
    config: SparkLikeConfig | None = None,
    *,
    seed: int = 0,
) -> SparkLikeRun:
    """Simulate a dataflow job; emits the same artifact kinds as the graph engines."""
    cfg = config or SparkLikeConfig()
    cluster = Cluster(cfg.n_machines, n_cores=cfg.cores_per_machine, net_bandwidth=cfg.net_bandwidth)
    sim, recorder = cluster.sim, cluster.recorder
    log = EventLog()
    rng = np.random.default_rng(seed)

    stage_durations = {s.name: _task_durations(s, rng) for s in job.stages}
    # Tasks round-robin over machines (fixed at submission: no migration).
    stage_task_machine = {
        s.name: np.arange(s.n_tasks) % cfg.n_machines for s in job.stages
    }

    stage_done: dict[str, object] = {}
    stage_handles: dict[str, PhaseHandle] = {}
    state = {"makespan": 0.0}
    # Cores are exclusive: concurrent stages queue for them FIFO.  Each
    # (machine, core) holds the completion event of its current occupant.
    core_locks: dict[tuple[int, int], object] = {}

    def executor_core(machine_idx: int, core: int, stage: StageSpec, tasks: list[int],
                      parent: PhaseHandle):
        machine = cluster[machine_idx]
        key = (machine_idx, core)
        prev = core_locks.get(key)
        done = sim.event()
        core_locks[key] = done
        if prev is not None and not prev.triggered:  # type: ignore[union-attr]
            yield prev
        for t_idx in tasks:
            yield sim.timeout(cfg.scheduler_delay)
            handle = log.start_phase(
                "/Job/Stage/Task",
                sim.now,
                parent=parent,
                machine=machine.name,
                worker=machine.name,
                thread=f"{machine.name}-c{core}",
            )
            eff = rng.uniform(cfg.cpu_efficiency_min, cfg.cpu_efficiency_max)
            yield machine.work(float(stage_durations[stage.name][t_idx]), cpu_rate=eff)
            log.end_phase(handle, sim.now)
        done.succeed()

    def run_stage(stage: StageSpec, job_handle: PhaseHandle):
        # Wait for parents.
        for p in stage.parents:
            yield stage_done[p]
        handle = log.start_phase(
            "/Job/Stage",
            sim.now,
            parent=job_handle,
            depends_on=[stage_handles[p] for p in stage.parents],
        )
        stage_handles[stage.name] = handle

        # Schedule tasks: per machine, per core, a FIFO share of the tasks.
        machines_tasks: dict[int, list[int]] = {}
        for t_idx, m in enumerate(stage_task_machine[stage.name]):
            machines_tasks.setdefault(int(m), []).append(t_idx)
        procs = []
        for m, tasks in machines_tasks.items():
            for core in range(cfg.cores_per_machine):
                share = tasks[core :: cfg.cores_per_machine]
                if share:
                    procs.append(sim.process(executor_core(m, core, stage, share, handle)))
        for p in procs:
            yield p.completion

        # Shuffle output: each machine ships its partition before children run.
        if stage.shuffle_mb > 0:
            sends = []
            for m in machines_tasks:
                sh = log.start_phase(
                    "/Job/Stage/Shuffle",
                    sim.now,
                    parent=handle,
                    machine=cluster[m].name,
                    worker=cluster[m].name,
                )
                ev = cluster[m].send(stage.shuffle_mb * 1e6 / len(machines_tasks))
                sends.append((sh, ev))
            for sh, ev in sends:
                yield ev
                log.end_phase(sh, sim.now)
        log.end_phase(handle, sim.now)
        stage_done[stage.name].succeed()  # type: ignore[attr-defined]

    def driver():
        job_handle = log.start_phase("/Job", sim.now)
        for s in job.stages:
            stage_done[s.name] = sim.event()
        for s in job.topological_stages:
            sim.process(run_stage(s, job_handle))
        for s in job.stages:
            yield stage_done[s.name]
        log.end_phase(job_handle, sim.now)
        state["makespan"] = sim.now

    sim.process(driver())
    sim.run()
    return SparkLikeRun(
        config=cfg,
        job=job,
        log=log,
        recorder=recorder,
        makespan=float(state["makespan"]),
        machine_names=[m.name for m in cluster],
    )


# ---------------------------------------------------------------------- #
# Workload library
# ---------------------------------------------------------------------- #


def wordcount_job(*, scale: float = 1.0) -> SparkLikeJob:
    """map → reduce with one shuffle (the canonical two-stage job)."""
    return SparkLikeJob(
        "wordcount",
        [
            StageSpec("map", n_tasks=32, work=8.0 * scale, shuffle_mb=64 * scale, skew=2.0),
            StageSpec("reduce", n_tasks=16, work=3.0 * scale, parents=("map",), skew=1.3),
        ],
    )


def join_job(*, scale: float = 1.0) -> SparkLikeJob:
    """Two scans feeding a shuffled join, then an aggregate — a diamond DAG."""
    return SparkLikeJob(
        "join",
        [
            StageSpec("scan_a", n_tasks=24, work=5.0 * scale, shuffle_mb=48 * scale, skew=1.5),
            StageSpec("scan_b", n_tasks=24, work=4.0 * scale, shuffle_mb=40 * scale, skew=1.5),
            StageSpec(
                "join", n_tasks=32, work=10.0 * scale, parents=("scan_a", "scan_b"),
                shuffle_mb=32 * scale, skew=3.0,
            ),
            StageSpec("agg", n_tasks=8, work=1.5 * scale, parents=("join",), skew=1.2),
        ],
    )


def etl_job(*, scale: float = 1.0) -> SparkLikeJob:
    """A longer pipeline with two independent branches merged at the end."""
    return SparkLikeJob(
        "etl",
        [
            StageSpec("extract", n_tasks=16, work=4.0 * scale, shuffle_mb=32 * scale),
            StageSpec("clean", n_tasks=16, work=6.0 * scale, parents=("extract",), skew=2.5),
            StageSpec("features", n_tasks=16, work=5.0 * scale, parents=("clean",),
                      shuffle_mb=24 * scale),
            StageSpec("stats", n_tasks=8, work=2.0 * scale, parents=("extract",)),
            StageSpec("load", n_tasks=8, work=2.0 * scale, parents=("features", "stats")),
        ],
    )
