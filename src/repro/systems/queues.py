"""Bounded outbound message queues (Giraph-style backpressure).

Giraph workers buffer outgoing messages in bounded per-worker queues that a
network sender drains; when a queue fills, compute threads *stall* until
space frees up.  Those stalls are the ``queue@<machine>`` blocking resource
in the paper's tuned Giraph model and one of its two dominant Giraph
bottlenecks (Figure 4).

:class:`BoundedMessageQueue` models the queue in bytes with a dedicated
drainer process pushing chunks through the machine's NIC; producers use
``yield from queue.put(n)`` and measure their own stall time.
"""

from __future__ import annotations

from ..cluster.events import Event, Simulator
from ..cluster.machine import Machine

__all__ = ["BoundedMessageQueue"]


class BoundedMessageQueue:
    """A bounded byte queue drained through a machine's NIC."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        *,
        capacity_bytes: float = 64e6,
        drain_chunk_bytes: float = 4e6,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be > 0, got {capacity_bytes}")
        if drain_chunk_bytes <= 0:
            raise ValueError(f"drain_chunk_bytes must be > 0, got {drain_chunk_bytes}")
        self.sim = sim
        self.machine = machine
        self.capacity = capacity_bytes
        self.drain_chunk = drain_chunk_bytes
        self.occupied = 0.0
        self.total_stall_time = 0.0
        self._waiters: list[Event] = []
        self._drainer_running = False

    @property
    def resource_name(self) -> str:
        return f"queue@{self.machine.name}"

    @property
    def free(self) -> float:
        return self.capacity - self.occupied

    def put(self, n_bytes: float):
        """Producer coroutine: enqueue ``n_bytes``, stalling while full.

        Use as ``yield from queue.put(n)`` inside a process generator.  A
        single put larger than the whole queue is admitted in capacity-sized
        pieces (as a real buffered sender would split it).
        """
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        t0 = self.sim.now
        remaining = n_bytes
        while remaining > 0:
            space = self.free
            if space <= 0:
                ev = self.sim.event()
                self._waiters.append(ev)
                yield ev
                continue
            chunk = min(remaining, space)
            self.occupied += chunk
            remaining -= chunk
            self._ensure_drainer()
        self.total_stall_time += self.sim.now - t0
        return self.sim.now - t0  # stall duration, for the caller's logging

    def _ensure_drainer(self) -> None:
        if not self._drainer_running and self.occupied > 0:
            self._drainer_running = True
            self.sim.process(self._drain())

    def _drain(self):
        while self.occupied > 0:
            chunk = min(self.occupied, self.drain_chunk)
            yield self.machine.send(chunk)
            self.occupied -= chunk
            waiters, self._waiters = self._waiters, []
            for ev in waiters:
                ev.succeed()
        self._drainer_running = False

    def drained(self) -> Event:
        """Event that fires once the queue is fully empty (for flush phases)."""
        ev = self.sim.event()
        self.sim.process(self._watch_empty(ev))
        return ev

    def _watch_empty(self, ev: Event):
        while self.occupied > 0 or self._drainer_running:
            yield self.sim.timeout(0.001)
        ev.succeed()
