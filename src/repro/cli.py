"""Command-line interface: ``python -m repro <command>``.

Subcommands:

``run``
    Execute one workload on a simulated system and print the Grade10
    report (optionally exporting the profile as JSON):
    ``python -m repro run giraph graph500 pr --preset small --json out.json``

``experiment``
    Regenerate one of the paper's evaluation artifacts:
    ``python -m repro experiment table2|fig3|fig4|fig5|fig6 --preset small``
    (grid-shaped artifacts accept ``--jobs N``)

``suite``
    Run the Graphalytics-style benchmark grid, optionally in parallel and
    backed by the content-addressed run cache:
    ``python -m repro suite --jobs 4 --cache-dir .grade10-cache``

``faults``
    Produce a fault-perturbed copy of a run archive, or sweep a fault
    type × severity grid and report which pipeline invariants break:
    ``python -m repro faults RUN_DIR OUT_DIR --fault drop_samples:0.3``
    ``python -m repro faults RUN_DIR --grid --jobs 4``

``stats``
    Print the per-stage timing table of a captured pipeline trace
    (``--format json`` for machine-readable output):
    ``python -m repro stats trace.json``

``report``
    Render an archived run as one self-contained HTML report, optionally
    with a before/after diff section against a second archive:
    ``python -m repro report RUN_DIR --html report.html --diff-against BASE_DIR``

``metrics``
    Export an archived run's profile as an OpenMetrics/Prometheus text
    exposition (stdout by default):
    ``python -m repro metrics RUN_DIR --out metrics.txt``

``bench``
    Time the pipeline stages per system and write ``BENCH_pipeline.json``;
    with ``--diff BASELINE`` the result is gated against a baseline
    document and a regression exits with code 4:
    ``python -m repro bench --preset small --out BENCH_pipeline.json``
    ``python -m repro bench --diff BENCH_pipeline.json --preset small``

``serve``
    Run the benchmark suite while serving live telemetry over HTTP —
    ``/metrics`` (OpenMetrics counters, gauges, and latency histograms:
    ``http_request_duration_seconds``, ``job_queue_wait_seconds``,
    ``job_execute_seconds``, ``pipeline_stage_duration_seconds``),
    ``/healthz``, ``/runs`` (JSON status), ``/events`` (SSE progress
    stream) — plus the job API: ``POST /jobs`` enqueues analysis runs
    onto a bounded queue drained by ``--workers`` threads (429 +
    ``Retry-After`` when full), ``DELETE /jobs/<id>`` cancels queued
    jobs, and ``GET /jobs/<id>/trace`` returns the job's end-to-end
    Chrome trace (HTTP handling, queue wait, execution, and every
    pipeline stage in one span tree).  Requests may carry a W3C
    ``traceparent`` header; every response echoes the trace id as
    ``X-Request-Id``.  ``--no-suite`` skips the local sweep and serves
    the job API only; see ``docs/serving.md``:
    ``python -m repro serve --no-suite --port 8321``
    (``suite --serve PORT`` serves the read-only endpoints for one sweep)

``loadgen``
    Open-loop load generator against a live ``serve``: submit jobs at a
    fixed arrival rate (each request stamped with a fresh ``traceparent``
    header), stream every job's SSE events to completion, and print
    per-period p50/p90/p99 latency tables.  Each period also shows the
    server-measured submit latency (scraped from ``/metrics``) next to
    the client-measured one and warns when they disagree by more than
    10%; ``--no-server-latency`` skips the scrapes.  ``--out`` writes a
    ``grade10-bench-serve/1`` document gateable with ``bench --diff``:
    ``python -m repro loadgen http://127.0.0.1:8321 --rate 2 --duration 30``

``datasets``
    List the available datasets and their preset sizes.

``systems``
    List the simulated systems and algorithms.

``run``, ``suite``, and ``analyze`` accept ``--trace PATH``: the whole
invocation is traced through :mod:`repro.obs` (including pool workers)
and exported as a Chrome-trace JSON loadable in ``chrome://tracing`` or
https://ui.perfetto.dev.

``run``, ``analyze``, ``suite``, ``bench``, ``report``, and ``serve``
share one output option group: ``--quiet`` (warnings only),
``--log-level LEVEL``, and ``--log-json`` (stderr diagnostics as JSON
lines carrying the active span id; also ``REPRO_LOG=json``) — see
:mod:`repro.obs_logging`.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from statistics import median

from . import obs, obs_logging
from .algorithms import ALGORITHMS
from .bench import DEFAULT_REL_THRESHOLD
from .core import PROFILE_BACKENDS, render_report
from .core.export import write_profile_json
from .core.simulation import SimulationError
from .viz import Table, format_table, sparkline
from .workloads import (
    UPSAMPLING_RATIOS,
    WorkloadSpec,
    characterize_run,
    dataset_names,
    experiment_fig3,
    experiment_fig4,
    experiment_fig5,
    experiment_fig6,
    experiment_table2,
    get_dataset,
    run_workload,
)
from .workloads.experiments import FIG5_PHASES, RESOURCE_CLASSES
from .workloads.runner import SYSTEMS

__all__ = ["main", "build_parser"]

_LOG = obs_logging.get_logger("repro.cli")


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    """The shared verbosity/structured-logging option group.

    One helper instead of per-command ad-hoc prints: every command that
    emits informational stderr goes through :mod:`repro.obs_logging`, so
    ``--quiet`` silences it uniformly and ``--log-json`` turns the same
    stream into span-correlated JSON lines.
    """
    group = parser.add_argument_group("output")
    group.add_argument(
        "--quiet", action="store_true",
        help="suppress informational stderr output (warnings still show)",
    )
    group.add_argument(
        "--log-level", choices=("debug", "info", "warning", "error"),
        help="stderr verbosity (default: info)",
    )
    group.add_argument(
        "--log-json", action="store_true",
        help="emit stderr diagnostics as JSON lines with span-id "
             "correlation (also: REPRO_LOG=json)",
    )


def _configure_logging(args: argparse.Namespace) -> None:
    """Apply the shared output options (safe for commands without them)."""
    mode = "json" if getattr(args, "log_json", False) else None
    level = getattr(args, "log_level", None)
    if getattr(args, "quiet", False):
        level = "warning"
    obs_logging.configure(mode=mode, level=level)


def _positive_int(text: str) -> int:
    """Argparse type for values that must be whole numbers >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Grade10 reproduction: characterize simulated graph-processing runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a workload and print its Grade10 profile")
    p_run.add_argument("system", choices=SYSTEMS)
    p_run.add_argument("dataset", choices=dataset_names())
    p_run.add_argument("algorithm", choices=sorted(ALGORITHMS))
    p_run.add_argument("--preset", default="small", choices=("tiny", "small", "full"))
    p_run.add_argument("--untuned", action="store_true", help="use the untuned model")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--json", metavar="PATH", help="export the profile summary as JSON")
    p_run.add_argument(
        "--archive", metavar="DIR", help="persist the run's artifacts for offline analysis"
    )
    p_run.add_argument(
        "--extended", action="store_true",
        help="include the phase tree and utilization heatmap in the report",
    )
    p_run.add_argument(
        "--trace", metavar="PATH",
        help="capture a Chrome-trace of the pipeline run (open in Perfetto)",
    )
    p_run.add_argument(
        "--profile-backend", default="objects", choices=PROFILE_BACKENDS,
        help="pipeline core: object graphs or columnar arrays "
             "(equivalent outputs; default: %(default)s)",
    )
    _add_output_options(p_run)

    p_an = sub.add_parser("analyze", help="characterize an archived run directory")
    p_an.add_argument("directory")
    p_an.add_argument("--untuned", action="store_true")
    p_an.add_argument("--slice", type=float, default=0.01, help="timeslice duration (s)")
    p_an.add_argument(
        "--follow", action="store_true",
        help="tail events.jsonl through the incremental analyzer, rendering "
             "a rolling bottleneck table as windows seal (works on logs "
             "still being written)",
    )
    p_an.add_argument(
        "--follow-timeout", type=float, default=2.0, metavar="S",
        help="stop following once the log stops growing for this many "
             "seconds (default: %(default)s)",
    )
    p_an.add_argument(
        "--window", type=float, default=0.08, metavar="S",
        help="live analysis window width in seconds for --follow "
             "(default: %(default)s)",
    )
    p_an.add_argument(
        "--extended", action="store_true",
        help="include the phase tree, heatmap, and recommendations",
    )
    p_an.add_argument(
        "--check-invariants", action="store_true",
        help="run the pipeline invariant checker after analysis "
             "(exit 3 when a violation is found)",
    )
    p_an.add_argument(
        "--trace", metavar="PATH",
        help="capture a Chrome-trace of the analysis (open in Perfetto)",
    )
    p_an.add_argument(
        "--profile-backend", default="objects", choices=PROFILE_BACKENDS,
        help="pipeline core: object graphs or columnar arrays "
             "(equivalent outputs; default: %(default)s)",
    )
    _add_output_options(p_an)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "artifact", choices=("table2", "fig3", "fig4", "fig5", "fig6", "all")
    )
    p_exp.add_argument("--preset", default="small", choices=("tiny", "small", "full"))
    p_exp.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for grid-shaped experiments (fig4, fig5)",
    )

    p_suite = sub.add_parser("suite", help="run the Graphalytics-style benchmark grid")
    p_suite.add_argument("--preset", default="small", choices=("tiny", "small", "full"))
    p_suite.add_argument(
        "--systems", default="giraph,powergraph", help="comma-separated system list"
    )
    p_suite.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes to fan the grid out across",
    )
    p_suite.add_argument(
        "--cache-dir", default=".grade10-cache", metavar="DIR",
        help="content-addressed run cache location (default: %(default)s)",
    )
    p_suite.add_argument(
        "--no-cache", action="store_true",
        help="always re-simulate; neither read nor write the run cache",
    )
    p_suite.add_argument(
        "--characterize", action="store_true",
        help="also run the Grade10 pipeline on every cell",
    )
    p_suite.add_argument("--seed", type=int, default=0)
    p_suite.add_argument(
        "--trace", metavar="PATH",
        help="capture a Chrome-trace of the sweep, merging pool-worker "
             "spans and cache hit/miss counters (open in Perfetto)",
    )
    p_suite.add_argument(
        "--report-dir", metavar="DIR",
        help="write per-cell HTML reports plus an index.html here "
             "(requires --characterize)",
    )
    p_suite.add_argument(
        "--profile-backend", default="objects", choices=PROFILE_BACKENDS,
        help="pipeline core for --characterize (default: %(default)s)",
    )
    p_suite.add_argument(
        "--serve", type=int, metavar="PORT", dest="serve_port",
        help="serve live telemetry (/metrics, /healthz, /runs, /events) "
             "on this port for the duration of the sweep (0 = any free port)",
    )
    _add_output_options(p_suite)

    p_serve = sub.add_parser(
        "serve",
        help="run the benchmark suite while serving live telemetry over HTTP",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port", type=int, default=8321,
        help="HTTP port (0 = any free port; default: %(default)s)",
    )
    p_serve.add_argument(
        "--port-file", metavar="PATH",
        help="write the bound port here once listening (for automation)",
    )
    p_serve.add_argument("--preset", default="small", choices=("tiny", "small", "full"))
    p_serve.add_argument(
        "--systems", default="giraph,powergraph", help="comma-separated system list"
    )
    p_serve.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes to fan the grid out across",
    )
    p_serve.add_argument(
        "--cache-dir", default=".grade10-cache", metavar="DIR",
        help="content-addressed run cache location (default: %(default)s)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="always re-simulate; neither read nor write the run cache",
    )
    p_serve.add_argument(
        "--characterize", action="store_true",
        help="also run the Grade10 pipeline on every cell",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--no-linger", action="store_true",
        help="exit when the suite completes instead of serving until "
             "SIGTERM/SIGINT",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=5.0, metavar="SECONDS",
        help="/events heartbeat cadence while idle (default: %(default)s)",
    )
    p_serve.add_argument(
        "--no-suite", action="store_true",
        help="skip the local benchmark sweep; serve the job API only",
    )
    p_serve.add_argument(
        "--queue-size", type=_positive_int, default=32, metavar="N",
        help="bounded job-queue capacity; a full queue answers POST /jobs "
             "with 429 + Retry-After (default: %(default)s)",
    )
    p_serve.add_argument(
        "--workers", type=_positive_int, default=2, metavar="N",
        help="worker threads draining the job queue (default: %(default)s)",
    )
    _add_output_options(p_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load generator against a live `repro serve`",
    )
    p_loadgen.add_argument(
        "url", help="base URL of the service, e.g. http://127.0.0.1:8321"
    )
    p_loadgen.add_argument(
        "--rate", type=float, default=2.0, metavar="OPS_PER_S",
        help="fixed arrival rate of job submissions (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--duration", type=float, default=30.0, metavar="SECONDS",
        help="length of the arrival schedule (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--period", type=float, default=5.0, metavar="SECONDS",
        help="latency-table reporting period (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--max-in-flight", type=_positive_int, default=64, metavar="N",
        help="client-side concurrency cap; arrivals beyond it count as "
             "overload instead of shifting the schedule (default: %(default)s)",
    )
    p_loadgen.add_argument("--preset", default="tiny", choices=("tiny", "small", "full"))
    p_loadgen.add_argument(
        "--systems", default="giraph", help="comma-separated system list"
    )
    p_loadgen.add_argument(
        "--grid", default="graph500/pr",
        help="comma-separated dataset/algorithm cells (default: %(default)s)",
    )
    p_loadgen.add_argument("--seed", type=int, default=0)
    p_loadgen.add_argument(
        "--characterize", action="store_true",
        help="submitted jobs also run the Grade10 pipeline",
    )
    p_loadgen.add_argument(
        "--spec", metavar="PATH",
        help="JSON job-spec file posted verbatim; overrides the spec flags",
    )
    p_loadgen.add_argument(
        "--live-fraction", type=float, default=0.0, metavar="F",
        help="fraction of arrivals submitted as live incremental-analysis "
             "jobs, measured as separate submit_live/e2e_live ops "
             "(default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--no-server-latency", action="store_true",
        help="skip the per-period /metrics scrapes that report "
             "server-measured submit latency next to the client-measured one",
    )
    p_loadgen.add_argument(
        "--out", metavar="PATH",
        help="write the grade10-bench-serve/1 document here",
    )
    _add_output_options(p_loadgen)

    p_stats = sub.add_parser(
        "stats", help="per-stage timing table of a captured pipeline trace"
    )
    p_stats.add_argument("trace", help="trace file written by --trace")
    p_stats.add_argument(
        "--sort", choices=("total", "mean", "count", "name"), default="total",
        help="sort order of the stage table (default: %(default)s)",
    )
    p_stats.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: %(default)s)",
    )

    p_report = sub.add_parser(
        "report", help="render an archived run as a self-contained HTML report"
    )
    p_report.add_argument("directory", help="run archive to characterize")
    p_report.add_argument(
        "--html", default="grade10-report.html", metavar="PATH",
        help="where to write the report (default: %(default)s)",
    )
    p_report.add_argument("--title", help="report title (default: derived from the archive)")
    p_report.add_argument(
        "--diff-against", metavar="DIR",
        help="baseline archive; adds a before/after diff section",
    )
    p_report.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="how to print the diff on stdout when --diff-against is given "
             "(default: %(default)s)",
    )
    p_report.add_argument(
        "--trace", metavar="PATH",
        help="pipeline trace written by --trace; adds a pipeline section",
    )
    p_report.add_argument(
        "--bench", metavar="PATH",
        help="BENCH_pipeline.json document; adds a bench section",
    )
    p_report.add_argument(
        "--open", action="store_true", help="open the report in a browser"
    )
    p_report.add_argument("--untuned", action="store_true")
    p_report.add_argument("--slice", type=float, default=0.01, help="timeslice duration (s)")
    _add_output_options(p_report)

    p_metrics = sub.add_parser(
        "metrics", help="OpenMetrics text exposition of an archived run"
    )
    p_metrics.add_argument("directory", help="run archive to characterize")
    p_metrics.add_argument(
        "--out", metavar="PATH",
        help="write the exposition here instead of stdout",
    )
    p_metrics.add_argument(
        "--trace", metavar="PATH",
        help="pipeline trace; exports its counters as a metric family too",
    )
    p_metrics.add_argument("--untuned", action="store_true")
    p_metrics.add_argument("--slice", type=float, default=0.01, help="timeslice duration (s)")

    p_bench = sub.add_parser(
        "bench", help="time the pipeline stages and write BENCH_pipeline.json"
    )
    p_bench.add_argument("--preset", default="small", choices=("tiny", "small", "full"))
    p_bench.add_argument(
        "--systems", default=",".join(SYSTEMS), help="comma-separated system list"
    )
    p_bench.add_argument("--dataset", default="graph500", choices=dataset_names())
    p_bench.add_argument("--algorithm", default="pr", choices=sorted(ALGORITHMS))
    p_bench.add_argument(
        "--backends", default="objects", metavar="LIST",
        help="comma-separated profile backends to time "
             f"(from {','.join(PROFILE_BACKENDS)}; default: %(default)s)",
    )
    p_bench.add_argument("--repeats", type=_positive_int, default=3, metavar="N")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--out", default="BENCH_pipeline.json", metavar="PATH",
        help="where to write the benchmark document (default: %(default)s)",
    )
    p_bench.add_argument(
        "--diff", metavar="BASELINE",
        help="compare against this bench document; exit 4 on regression",
    )
    p_bench.add_argument(
        "--candidate", metavar="DOC",
        help="with --diff: compare this pre-recorded document instead of "
             "running the bench",
    )
    p_bench.add_argument(
        "--threshold", type=float, metavar="FRACTION",
        help="relative regression threshold for --diff "
             f"(default: {DEFAULT_REL_THRESHOLD})",
    )
    _add_output_options(p_bench)

    p_faults = sub.add_parser(
        "faults", help="perturb a run archive with injected faults"
    )
    p_faults.add_argument("source", nargs="?", help="run archive to perturb")
    p_faults.add_argument("dest", nargs="?", help="where to write the perturbed copy")
    p_faults.add_argument(
        "--fault", action="append", default=[], metavar="NAME[:SEVERITY]",
        help="fault to inject (repeatable, applied in order); "
             "severity in [0, 1], default 0.3",
    )
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument(
        "--list", action="store_true", help="list the available fault types"
    )
    p_faults.add_argument(
        "--grid", action="store_true",
        help="sweep fault type x severity and report which invariants break",
    )
    p_faults.add_argument(
        "--severities", default="0.1,0.3,0.5", metavar="S1,S2,...",
        help="severity levels for --grid (default: %(default)s)",
    )
    p_faults.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for --grid",
    )
    p_faults.add_argument(
        "--work-dir", metavar="DIR",
        help="keep --grid's perturbed archives here instead of a temp dir",
    )

    sub.add_parser("datasets", help="list datasets")
    sub.add_parser("systems", help="list systems and algorithms")
    return parser


@contextlib.contextmanager
def _tracing(path: str | None):
    """Trace the enclosed work and export it to ``path`` (no-op when None)."""
    if not path:
        yield None
        return
    tracer = obs.install()
    try:
        yield tracer
    finally:
        obs.uninstall()
        tracer.export_chrome_trace(path)
        _LOG.info(f"trace written to {path} (open in chrome://tracing or "
                  "https://ui.perfetto.dev)")


def _cmd_run(args: argparse.Namespace) -> int:
    spec = WorkloadSpec(args.system, args.dataset, args.algorithm, preset=args.preset,
                        seed=args.seed)
    _LOG.info(f"running {spec.label} (preset={args.preset}) ...")
    with _tracing(args.trace):
        run = run_workload(spec)
        profile = characterize_run(
            run, tuned=not args.untuned, profile_backend=args.profile_backend
        )
    print(render_report(profile, extended=args.extended))
    if args.json:
        write_profile_json(profile, args.json)
        _LOG.info(f"profile exported to {args.json}")
    if args.archive:
        from .workloads.archive import save_run

        save_run(run.system_run, args.archive)
        _LOG.info(f"run archived to {args.archive}")
    return 0


def _cmd_analyze_follow(args: argparse.Namespace) -> int:
    """``repro analyze --follow``: stream an archive's log as it grows.

    Tails ``events.jsonl`` in raw chunks through
    :class:`~repro.core.incremental.IncrementalProfile`, printing one
    table row per sealed analysis window (rolling bottleneck view), and
    finishes with the exact batch report once the log stops growing for
    ``--follow-timeout`` seconds.
    """
    import time as _time
    from pathlib import Path

    from .cluster.monitor import read_monitoring_csv
    from .core.incremental import IncrementalProfile
    from .core.model_io import load_models
    from .workloads.archive import ArchiveError, ArchiveNotFoundError

    directory = Path(args.directory)
    models_path = directory / "models.json"
    if not models_path.is_file():
        _LOG.error(f"error: run archive not found (no {models_path})")
        return 2
    try:
        model, resources, rules = load_models(models_path)
    except (ValueError, KeyError) as exc:
        _LOG.error(f"error: cannot load models.json: {exc}")
        return 2

    rows: list[list[str]] = []

    def on_window(summary) -> None:
        top = max(summary.bottlenecks, key=lambda b: b.duration, default=None)
        rows.append([
            str(summary.index),
            f"{summary.t_start:.2f}-{summary.t_end:.2f}",
            str(summary.n_rows),
            str(len(summary.bottlenecks)),
            f"{top.kind} {top.resource} ({top.duration:.3f}s)" if top else "-",
            f"{summary.lag_seconds:.2f}",
        ])
        print(
            f"window {summary.index:>4}  [{summary.t_start:8.2f}, {summary.t_end:8.2f})  "
            f"phases={summary.n_rows:<4} bottlenecks={len(summary.bottlenecks):<3} "
            f"lag={summary.lag_seconds:.2f}s"
        )

    inc = IncrementalProfile(
        model,
        resources,
        rules,
        slice_duration=args.slice,
        include_gc_phases=not args.untuned,
        window_slices=max(1, int(args.window / args.slice)),
        on_window=on_window,
    )
    monitoring = directory / "monitoring.csv"
    if monitoring.is_file():
        inc.feed_resource_trace(read_monitoring_csv(monitoring))

    events_path = directory / "events.jsonl"
    deadline = _time.monotonic() + args.follow_timeout
    fh = None
    try:
        while True:
            if fh is None:
                if events_path.is_file():
                    fh = open(events_path, "r")
                elif _time.monotonic() >= deadline:
                    _LOG.error(f"error: no event log appeared at {events_path}")
                    return 2
                else:
                    _time.sleep(0.05)
                    continue
            chunk = fh.read(65536)
            if chunk:
                inc.feed_text(chunk)
                deadline = _time.monotonic() + args.follow_timeout
            elif _time.monotonic() >= deadline:
                break
            else:
                _time.sleep(0.05)
    finally:
        if fh is not None:
            fh.close()

    try:
        profile = inc.finalize()
    except (ArchiveError, ArchiveNotFoundError, ValueError) as exc:
        _LOG.error(f"error: incremental analysis failed: {exc}")
        return 2
    print(format_table(
        ["window", "span (s)", "phases", "bottlenecks", "top bottleneck", "lag (s)"],
        rows,
        title=f"Live analysis — {inc.windows_analyzed} windows, "
              f"{inc.events_ingested} events",
    ))
    series = sorted(inc.bottleneck_seconds.items())
    if series:
        print(format_table(
            ["resource", "kind", "seconds"],
            [[resource, kind, f"{seconds:.3f}"] for (resource, kind), seconds in series],
            title="Cumulative live bottleneck seconds",
        ))
    print(render_report(profile, extended=args.extended))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .workloads.archive import ArchiveError, characterize_archive

    if args.follow:
        return _cmd_analyze_follow(args)
    try:
        with _tracing(args.trace):
            profile = characterize_archive(
                args.directory,
                slice_duration=args.slice,
                tuned=not args.untuned,
                profile_backend=args.profile_backend,
            )
    except ArchiveError as exc:
        _LOG.error(f"error: {exc}")
        return 2
    print(render_report(profile, extended=args.extended))
    if args.check_invariants:
        report = profile.check_invariants()
        print(report.render())
        if not report.ok:
            return 3
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .faults import (
        FAULTS,
        FaultError,
        apply_faults,
        parse_fault,
        run_fault_grid,
    )
    from .workloads.archive import ArchiveError

    if args.list:
        rows = [
            [name, (cls.__doc__ or "").strip().splitlines()[0]]
            for name, cls in FAULTS.items()
        ]
        print(format_table(["fault", "description"], rows, title="Fault taxonomy"))
        return 0
    if args.source is None:
        _LOG.error("error: a source archive is required (or use --list)")
        return 2
    try:
        if args.grid:
            severities = tuple(
                float(s) for s in args.severities.split(",") if s.strip()
            )
            cells = run_fault_grid(
                args.source,
                severities=severities,
                seed=args.seed,
                jobs=args.jobs,
                work_dir=args.work_dir,
            )
            by_fault: dict[str, dict[float, str]] = {}
            for c in cells:
                short = {
                    "ok": "ok",
                    "error": "typed error",
                    "violations": f"{c.n_violations} violation(s): "
                                  + ",".join(c.invariants),
                }[c.outcome]
                by_fault.setdefault(c.fault, {})[c.severity] = short
            print(format_table(
                ["fault"] + [f"{s:g}" for s in severities],
                [[f] + [row.get(s, "-") for s in severities]
                 for f, row in by_fault.items()],
                title="Fault grid — analysis outcome per fault x severity",
            ))
            return 0
        if args.dest is None or not args.fault:
            _LOG.error("error: perturbing needs SOURCE DEST and at least one --fault")
            return 2
        faults = [parse_fault(text) for text in args.fault]
        dest = apply_faults(args.source, args.dest, faults, seed=args.seed)
    except (FaultError, ArchiveError) as exc:
        _LOG.error(f"error: {exc}")
        return 2
    applied = ", ".join(f.describe() for f in faults)
    _LOG.info(f"perturbed archive written to {dest} ({applied})")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    jobs = getattr(args, "jobs", 1)
    if args.artifact == "all":
        import argparse as _argparse

        for artifact in ("table2", "fig3", "fig4", "fig5", "fig6"):
            print(f"\n=== {artifact} ===")
            _cmd_experiment(
                _argparse.Namespace(artifact=artifact, preset=args.preset, jobs=jobs)
            )
        return 0
    if args.artifact == "table2":
        rows = experiment_table2(args.preset)
        by_config: dict[str, dict[int, tuple[float, float]]] = {}
        for r in rows:
            by_config.setdefault(r.config, {})[r.ratio] = (r.grade10_error, r.constant_error)
        out = []
        for config, data in by_config.items():
            for idx, method in enumerate(("grade10", "constant")):
                out.append([config if idx == 0 else "", method]
                           + [f"{data[k][idx]:.2f}" for k in UPSAMPLING_RATIOS])
        print(format_table(
            ["config", "method"] + [f"{r}x" for r in UPSAMPLING_RATIOS], out,
            title="Table II — relative sampling error (%)",
        ))
    elif args.artifact == "fig3":
        for s in experiment_fig3(args.preset):
            cap = float(s.n_threads)
            print(f"[{s.config}]")
            print(f"  usage  {sparkline(s.attributed_cpu, max_value=cap)}")
            print(f"  demand {sparkline(s.estimated_demand, max_value=cap)}")
    elif args.artifact == "fig4":
        cells = experiment_fig4(args.preset, jobs=jobs)
        grid: dict[str, dict[str, float]] = {}
        for c in cells:
            grid.setdefault(f"{c.system}/{c.dataset}/{c.algorithm}", {})[
                c.resource_class
            ] = c.improvement
        print(format_table(
            ["workload"] + list(RESOURCE_CLASSES),
            [[w] + [f"{v.get(k, 0):.1%}" for k in RESOURCE_CLASSES] for w, v in grid.items()],
            title="Figure 4 — bottleneck impact",
        ))
    elif args.artifact == "fig5":
        cells = experiment_fig5(args.preset, jobs=jobs)
        jobs: dict[str, dict[str, float]] = {}
        for c in cells:
            jobs.setdefault(f"{c.dataset}/{c.algorithm}", {})[c.phase] = c.improvement
        print(format_table(
            ["job"] + [p.rsplit("/", 1)[-1] for p in FIG5_PHASES],
            [[j] + [f"{v.get(p, 0):.1%}" for p in FIG5_PHASES] for j, v in jobs.items()],
            title="Figure 5 — imbalance impact",
        ))
    else:  # fig6
        res = experiment_fig6(args.preset, bug_enabled=True)
        print("Figure 6 — per-thread Gather durations, first iteration")
        for worker, durs in sorted(res.thread_durations.items()):
            med = median(durs)
            marks = " ".join(
                f"{d * 1000:.0f}ms" + ("*" if med > 0 and d > 1.5 * med else "")
                for d in sorted(durs)
            )
            print(f"  {worker}: {marks}")
        print(f"affected non-trivial steps: {res.affected_fraction:.0%}")
        if res.slowdowns:
            print(f"slowdowns: {min(res.slowdowns):.2f}x - {max(res.slowdowns):.2f}x")
    return 0


def _print_suite_result(result, preset: str) -> None:
    rows = [
        [e.label, f"{e.makespan:.2f}s", f"{e.processing_time:.2f}s",
         f"{e.evps / 1e6:.2f}M", e.n_iterations]
        for e in result
    ]
    print(format_table(
        ["workload", "makespan", "Tproc", "EVPS", "iterations"],
        rows,
        title=f"Benchmark suite ({preset})",
    ))
    if result.stats is not None:
        _LOG.info(result.stats.summary())


def _cmd_suite(args: argparse.Namespace) -> int:
    from .workloads.graphalytics import run_suite

    if args.report_dir and not args.characterize:
        _LOG.error("error: --report-dir requires --characterize")
        return 2
    systems = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    server = None
    if args.serve_port is not None:
        from .serve import TelemetryServer

        server = TelemetryServer(port=args.serve_port).start()
        _LOG.info(f"serving live telemetry on {server.url}")
    try:
        with _tracing(args.trace):
            result = run_suite(
                preset=args.preset,
                systems=systems,
                seed=args.seed,
                characterize=args.characterize,
                jobs=args.jobs,
                cache_dir=None if args.no_cache else args.cache_dir,
                on_status=server.register if server is not None else None,
                profile_backend=args.profile_backend,
            )
    finally:
        if server is not None:
            server.stop()
    _print_suite_result(result, args.preset)
    if args.report_dir:
        from .report import write_suite_report

        index = write_suite_report(
            result, args.report_dir, title=f"Grade10 suite report ({args.preset})"
        )
        _LOG.info(f"suite report written to {index}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .jobs import JobQueue
    from .serve import TelemetryServer

    systems = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    stop = threading.Event()

    def _on_signal(signum: int, _frame: object) -> None:
        _LOG.info(f"received signal {signum}, shutting down")
        stop.set()

    # Install before the suite starts so a mid-run SIGTERM still exits
    # cleanly (the suite finishes its in-flight cells; KeyboardInterrupt
    # semantics stay with Ctrl-C's default only until we take over here).
    old_term = signal.signal(signal.SIGTERM, _on_signal)
    old_int = signal.signal(signal.SIGINT, _on_signal)
    queue = JobQueue(
        capacity=args.queue_size,
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    server = TelemetryServer(
        args.host, args.port, heartbeat_s=args.heartbeat, queue=queue
    ).start()
    queue.start()
    try:
        _LOG.info(f"serving live telemetry and job API on {server.url}")
        if args.port_file:
            from .ioutils import atomic_write_text

            atomic_write_text(args.port_file, f"{server.port}\n")
        if not args.no_suite:
            from .workloads.graphalytics import run_suite

            tracer = obs.install()
            try:
                result = run_suite(
                    preset=args.preset,
                    systems=systems,
                    seed=args.seed,
                    characterize=args.characterize,
                    jobs=args.jobs,
                    cache_dir=None if args.no_cache else args.cache_dir,
                    on_status=server.register,
                )
            finally:
                obs.uninstall()
                # /metrics keeps exposing the finished run's counters while
                # the server lingers for late scrapes.
                server.tracer_fn = lambda: tracer
            _print_suite_result(result, args.preset)
            if args.no_linger:
                return 0
            _LOG.info("suite finished; serving until SIGTERM/SIGINT")
        elif args.no_linger:
            return 0
        else:
            _LOG.info("job API ready; serving until SIGTERM/SIGINT")
        while not stop.wait(0.2):
            pass
        return 0
    finally:
        # Clean drain: in-flight jobs finish, still-queued jobs are
        # cancelled (each ends with its terminal run.finished event).
        queue.shutdown(drain=False, timeout=30.0)
        server.stop()
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .jobs import JobSpecError
    from .loadgen import LoadgenError, render_load_summary, run_loadgen

    if args.spec:
        from pathlib import Path

        try:
            spec = json.loads(Path(args.spec).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            _LOG.error(f"error: cannot read spec {args.spec}: {exc}")
            return 2
    else:
        spec = {
            "preset": args.preset,
            "systems": [s.strip() for s in args.systems.split(",") if s.strip()],
            "grid": [g.strip() for g in args.grid.split(",") if g.strip()],
            "seed": args.seed,
            "characterize": args.characterize,
        }
    try:
        doc = run_loadgen(
            args.url,
            rate=args.rate,
            duration_s=args.duration,
            spec=spec,
            period_s=args.period,
            max_in_flight=args.max_in_flight,
            server_latency=not args.no_server_latency,
            live_fraction=args.live_fraction,
            echo=print,
        )
    except JobSpecError as exc:
        _LOG.error(f"error: invalid job spec: {exc}")
        return 2
    except (LoadgenError, ValueError) as exc:
        _LOG.error(f"error: {exc}")
        return 2
    print(render_load_summary(doc))
    if args.out:
        from .bench import write_bench_json

        write_bench_json(doc, args.out)
        _LOG.info(f"load document written to {args.out}")
    from .bench import validate_serve_bench_doc

    problems = validate_serve_bench_doc(doc)
    if problems:
        for p in problems:
            _LOG.error(f"error: load run unhealthy: {p}")
        return 3
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        events = obs.read_trace_events(args.trace)
    except (OSError, ValueError) as exc:
        _LOG.error(f"error: {exc}")
        return 2
    stages = obs.aggregate_stages(events)
    if not stages:
        _LOG.error("trace holds no span events")
        return 2
    wall_us = max(
        (e["ts"] + e.get("dur", 0.0) for e in events if e.get("ph") == "X"),
        default=0.0,
    ) - min((e["ts"] for e in events if e.get("ph") == "X"), default=0.0)
    keys = {
        "total": lambda s: -s.total_us,
        "mean": lambda s: -s.mean_us,
        "count": lambda s: -s.count,
        "name": lambda s: s.name,
    }
    # One row model, two renderers: raw numbers feed both the JSON output
    # and the formatted text table, so the two can never drift apart.
    raw_rows = [
        [
            s.name,
            s.count,
            s.total_us / 1e3,
            s.mean_us / 1e3,
            s.min_us / 1e3,
            s.max_us / 1e3,
            s.total_us / wall_us if wall_us > 0 else None,
        ]
        for s in sorted(stages.values(), key=keys[args.sort])
    ]
    headers = ["stage", "calls", "total ms", "mean ms", "min ms", "max ms", "% wall"]
    counters = obs.final_counters(events)
    counter_table = Table(
        ["counter", "value"],
        [[name, value] for name, value in sorted(counters.items())],
        title="Counters",
    )
    if args.format == "json":
        stage_table = Table(headers, raw_rows, title="Pipeline stage timings")
        payload = {
            "trace": args.trace,
            "wall_ms": wall_us / 1e3,
            "stages": stage_table.to_dict(),
            "counters": counter_table.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    text_rows = [
        [name, count, f"{total:.2f}", f"{mean:.3f}", f"{lo:.3f}", f"{hi:.3f}",
         f"{frac:.1%}" if frac is not None else "-"]
        for name, count, total, mean, lo, hi, frac in raw_rows
    ]
    print(Table(
        headers, text_rows, title=f"Pipeline stage timings — {args.trace}"
    ).render())
    if counters:
        print(format_table(
            ["counter", "value"],
            [[name, f"{value:g}"] for name, value in sorted(counters.items())],
            title="Counters",
        ))
    return 0


def _read_archive_meta(directory: str) -> dict:
    """Best-effort read of an archive's ``meta.json`` (empty dict on failure)."""
    from pathlib import Path

    try:
        return json.loads((Path(directory) / "meta.json").read_text())
    except (OSError, ValueError):
        return {}


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .core.diff import compare_profiles, diff_to_dict, render_diff
    from .report import write_html_report
    from .workloads.archive import ArchiveError, characterize_archive

    try:
        profile = characterize_archive(
            args.directory, slice_duration=args.slice, tuned=not args.untuned
        )
        diff = None
        if args.diff_against:
            baseline = characterize_archive(
                args.diff_against, slice_duration=args.slice, tuned=not args.untuned
            )
            diff = compare_profiles(baseline, profile)
    except ArchiveError as exc:
        _LOG.error(f"error: {exc}")
        return 2

    trace_events = None
    if args.trace:
        try:
            trace_events = obs.read_trace_events(args.trace)
        except (OSError, ValueError) as exc:
            _LOG.error(f"error: {exc}")
            return 2
    bench = None
    if args.bench:
        from .bench import read_bench_json

        try:
            bench = read_bench_json(args.bench)
        except (OSError, ValueError) as exc:
            _LOG.error(f"error: {exc}")
            return 2

    meta = _read_archive_meta(args.directory)
    title = args.title
    if not title:
        name = Path(args.directory).name or args.directory
        system = meta.get("system")
        title = f"Grade10 run report — {name}" + (f" ({system})" if system else "")

    path = write_html_report(
        profile, args.html, title=title, diff=diff,
        trace_events=trace_events, bench=bench,
    )
    _LOG.info(f"report written to {path}")
    if diff is not None:
        if args.format == "json":
            print(json.dumps(diff_to_dict(diff), indent=2))
        else:
            print(render_diff(diff))
    if args.open:
        import webbrowser

        webbrowser.open(path.resolve().as_uri())
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .ioutils import atomic_write_text
    from .workloads.archive import ArchiveError, characterize_archive

    try:
        profile = characterize_archive(
            args.directory, slice_duration=args.slice, tuned=not args.untuned
        )
    except ArchiveError as exc:
        _LOG.error(f"error: {exc}")
        return 2
    counters = None
    if args.trace:
        try:
            counters = obs.final_counters(obs.read_trace_events(args.trace))
        except (OSError, ValueError) as exc:
            _LOG.error(f"error: {exc}")
            return 2
    meta = _read_archive_meta(args.directory)
    labels = {"system": meta["system"]} if meta.get("system") else None
    text = obs.metrics_exposition(profile, counters, labels=labels)
    if args.out:
        atomic_write_text(args.out, text)
        _LOG.info(f"exposition written to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import compare_bench_docs, read_bench_json, render_bench_comparison

    baseline = None
    if args.candidate and not args.diff:
        _LOG.error("error: --candidate requires --diff BASELINE")
        return 2
    if args.diff:
        try:
            baseline = read_bench_json(args.diff)
        except (OSError, ValueError) as exc:
            _LOG.error(f"error: {exc}")
            return 2

    def gate(candidate: dict) -> int:
        kwargs = {}
        if args.threshold is not None:
            kwargs["rel_threshold"] = args.threshold
        cmp = compare_bench_docs(baseline, candidate, **kwargs)
        print(render_bench_comparison(cmp))
        return 0 if cmp.ok else 4

    if args.candidate:
        try:
            candidate = read_bench_json(args.candidate)
        except (OSError, ValueError) as exc:
            _LOG.error(f"error: {exc}")
            return 2
        return gate(candidate)
    return _bench_run(args, baseline, gate)


def _bench_run(args: argparse.Namespace, baseline, gate) -> int:
    from .bench import bench_pipeline, validate_bench_doc, write_bench_json

    systems = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    for backend in backends:
        if backend not in PROFILE_BACKENDS:
            _LOG.error(
                f"error: unknown backend {backend!r} "
                f"(expected one of {','.join(PROFILE_BACKENDS)})"
            )
            return 2
    _LOG.info(
        f"benchmarking pipeline stages: systems={','.join(systems)} "
        f"backends={','.join(backends)} "
        f"preset={args.preset} repeats={args.repeats} ..."
    )
    doc = bench_pipeline(
        preset=args.preset,
        systems=systems,
        dataset=args.dataset,
        algorithm=args.algorithm,
        repeats=args.repeats,
        seed=args.seed,
        backends=backends,
    )
    problems = validate_bench_doc(doc)
    if problems:
        for p in problems:
            _LOG.error(f"error: bench document invalid: {p}")
        return 2
    write_bench_json(doc, args.out)
    rows = [
        [
            system,
            f"{entry['total_s']['mean'] * 1e3:.1f}",
        ]
        + [
            f"{entry['stages'][stage]['mean_s'] * 1e3:.1f}"
            if stage in entry["stages"]
            else "-"
            for stage in ("generate", "parse", "demand", "upsample", "attribute",
                          "bottlenecks", "issues", "outliers")
        ]
        for system, entry in doc["systems"].items()
    ]
    print(format_table(
        ["system", "total ms", "generate", "parse", "demand", "upsample",
         "attribute", "bottlenecks", "issues", "outliers"],
        rows,
        title=f"Pipeline bench ({args.preset}, mean of {args.repeats})",
    ))
    if doc.get("tracing_overhead") is not None:
        _LOG.info(f"tracing overhead: {doc['tracing_overhead']:+.1%}")
    _LOG.info(f"benchmark document written to {args.out}")
    if baseline is not None:
        return gate(doc)
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        d = get_dataset(name)
        tiny = d.graph("tiny")
        small = d.graph("small")
        rows.append([name, d.family, f"{tiny.n_edges}", f"{small.n_edges}", d.description])
    print(format_table(["name", "family", "tiny |E|", "small |E|", "description"], rows))
    return 0


def _cmd_systems(_: argparse.Namespace) -> int:
    print("systems:    " + ", ".join(SYSTEMS))
    print("algorithms: " + ", ".join(sorted(ALGORITHMS)))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    handlers = {
        "run": _cmd_run,
        "analyze": _cmd_analyze,
        "experiment": _cmd_experiment,
        "suite": _cmd_suite,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "faults": _cmd_faults,
        "stats": _cmd_stats,
        "report": _cmd_report,
        "metrics": _cmd_metrics,
        "bench": _cmd_bench,
        "datasets": _cmd_datasets,
        "systems": _cmd_systems,
    }
    try:
        return handlers[args.command](args)
    except SimulationError as exc:
        # Same contract as the ArchiveError family: a typed, user-facing
        # failure maps to exit 2, never a raw traceback.
        _LOG.error(f"error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
