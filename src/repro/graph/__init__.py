"""Graph substrate: CSR graphs, generators, partitioners, and I/O."""

from .generators import (
    complete_graph,
    grid_graph,
    ldbc_like,
    path_graph,
    rmat,
    star_graph,
    uniform_random,
)
from .graph import Graph
from .io import read_edge_list, write_edge_list
from .partition import (
    EdgeCutPartition,
    VertexCutPartition,
    grid_vertex_cut,
    greedy_vertex_cut,
    hash_edge_cut,
    random_vertex_cut,
    range_edge_cut,
)

__all__ = [
    "Graph",
    "rmat",
    "ldbc_like",
    "uniform_random",
    "path_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "read_edge_list",
    "write_edge_list",
    "EdgeCutPartition",
    "VertexCutPartition",
    "hash_edge_cut",
    "range_edge_cut",
    "random_vertex_cut",
    "grid_vertex_cut",
    "greedy_vertex_cut",
]
