"""Synthetic graph generators.

The paper evaluates on two dataset families from LDBC Graphalytics:
Graph500-style synthetic graphs (Kronecker/R-MAT, heavy-tailed degree
distribution) and LDBC Datagen social-network graphs (community structure).
Both are reproduced here as seeded, vectorized generators:

* :func:`rmat` — the classic R-MAT recursive-matrix generator used by
  Graph500, generating all edges at once with vectorized per-bit quadrant
  draws;
* :func:`ldbc_like` — a community-structured social-network-like graph:
  vertices are assigned to power-law-sized communities; most edges stay
  inside a community, the rest connect communities preferentially by
  degree (a planted-partition/Chung-Lu hybrid);
* :func:`uniform_random` — Erdős–Rényi G(n, m), a low-skew control;
* small deterministic graphs (:func:`path_graph`, :func:`star_graph`,
  :func:`complete_graph`, :func:`grid_graph`) for tests.

Degree skew is the property that matters for the paper's findings — it
drives the partition imbalance and per-thread work irregularity Grade10
observes — so R-MAT parameters default to Graph500's (a,b,c) = (.57,.19,.19).
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "rmat",
    "ldbc_like",
    "uniform_random",
    "path_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
]


def rmat(
    scale: int,
    edge_factor: int = 16,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    dedup: bool = True,
) -> Graph:
    """R-MAT / Graph500-style generator.

    Generates ``2**scale`` vertices and ``edge_factor * 2**scale`` edge
    samples by recursively choosing a quadrant of the adjacency matrix per
    bit.  All bits for all edges are drawn vectorized: cost is
    ``O(scale × n_edges)`` with no Python-level loop over edges.

    Parameters follow Graph500: ``a + b + c <= 1`` with ``d = 1 - a - b - c``.
    """
    if scale < 0:
        raise ValueError(f"scale must be >= 0, got {scale}")
    if not (0 < a < 1 and 0 <= b < 1 and 0 <= c < 1 and a + b + c <= 1.0):
        raise ValueError(f"invalid R-MAT parameters a={a}, b={b}, c={c}")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / ab if ab > 0 else 0.0
    c_norm = c / (1.0 - ab) if ab < 1.0 else 0.0
    for bit in range(scale):
        # Choose row-half and column-half for this bit, for every edge.
        r = rng.random(m)
        go_down = r >= ab  # lower half of the matrix (sets the src bit)
        r2 = rng.random(m)
        right_if_up = r2 >= a_norm  # within the top half: quadrant b
        right_if_down = r2 >= c_norm  # within the bottom half: quadrant d
        go_right = np.where(go_down, right_if_down, right_if_up)
        src = (src << 1) | go_down
        dst = (dst << 1) | go_right

    # Permute vertex ids so degree is not correlated with id (Graph500 does
    # the same); keeps partitioning experiments honest.
    perm = rng.permutation(n)
    return Graph(n, perm[src], perm[dst], dedup=dedup)


def ldbc_like(
    n_vertices: int,
    avg_degree: float = 12.0,
    *,
    n_communities: int | None = None,
    intra_fraction: float = 0.8,
    community_exponent: float = 1.8,
    seed: int = 0,
    dedup: bool = True,
) -> Graph:
    """An LDBC-Datagen-like social network.

    Vertices are grouped into communities whose sizes follow a power law
    with exponent ``community_exponent``.  A fraction ``intra_fraction`` of
    edges connect vertices within a community (uniformly), the rest connect
    two communities sampled proportionally to community size.  This yields
    the clustered, skewed structure (hub communities, long-tailed degrees)
    that makes Datagen workloads imbalanced.
    """
    if n_vertices <= 0:
        raise ValueError(f"n_vertices must be > 0, got {n_vertices}")
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError(f"intra_fraction must be in [0, 1], got {intra_fraction}")
    rng = np.random.default_rng(seed)
    if n_communities is None:
        n_communities = max(int(np.sqrt(n_vertices)), 1)

    # Power-law community sizes, normalized to n_vertices.
    raw = rng.pareto(community_exponent, size=n_communities) + 1.0
    sizes = np.maximum((raw / raw.sum() * n_vertices).astype(np.int64), 1)
    # Fix rounding drift.
    diff = n_vertices - sizes.sum()
    sizes[0] += diff
    if sizes[0] < 1:
        sizes = np.maximum(sizes, 1)
        sizes[np.argmax(sizes)] -= sizes.sum() - n_vertices
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    community_of = np.repeat(np.arange(n_communities), sizes)

    m = int(avg_degree * n_vertices)
    n_intra = int(m * intra_fraction)
    n_inter = m - n_intra

    # Intra-community edges: pick a community ∝ size², since denser
    # communities have quadratically more vertex pairs — this concentrates
    # edges in hub communities (degree skew).
    w = sizes.astype(np.float64) ** 2
    comm = rng.choice(n_communities, size=n_intra, p=w / w.sum())
    u = offsets[comm] + (rng.random(n_intra) * sizes[comm]).astype(np.int64)
    v = offsets[comm] + (rng.random(n_intra) * sizes[comm]).astype(np.int64)

    # Inter-community edges: endpoints from communities ∝ size.
    ws = sizes.astype(np.float64)
    cu = rng.choice(n_communities, size=n_inter, p=ws / ws.sum())
    cv = rng.choice(n_communities, size=n_inter, p=ws / ws.sum())
    iu = offsets[cu] + (rng.random(n_inter) * sizes[cu]).astype(np.int64)
    iv = offsets[cv] + (rng.random(n_inter) * sizes[cv]).astype(np.int64)

    src = np.concatenate([u, iu])
    dst = np.concatenate([v, iv])
    # Shuffle vertex ids so communities are not contiguous id ranges.
    perm = rng.permutation(n_vertices)
    g = Graph(n_vertices, perm[src], perm[dst], dedup=dedup)
    g.community_of = perm_inverse_apply(perm, community_of)  # type: ignore[attr-defined]
    return g


def perm_inverse_apply(perm: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Relabel ``values`` (indexed by old id) to the permuted id space."""
    out = np.empty_like(values)
    out[perm] = values
    return out


def uniform_random(n_vertices: int, n_edges: int, *, seed: int = 0, dedup: bool = True) -> Graph:
    """Erdős–Rényi-style G(n, m): ``n_edges`` uniform (src, dst) samples."""
    if n_vertices <= 0:
        raise ValueError(f"n_vertices must be > 0, got {n_vertices}")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges)
    dst = rng.integers(0, n_vertices, size=n_edges)
    return Graph(n_vertices, src, dst, dedup=dedup)


def path_graph(n: int) -> Graph:
    """0 → 1 → … → n-1."""
    if n <= 0:
        raise ValueError("n must be > 0")
    v = np.arange(n - 1)
    return Graph(n, v, v + 1)


def star_graph(n: int) -> Graph:
    """Hub 0 with spokes 1..n-1 (edges hub → spoke)."""
    if n <= 0:
        raise ValueError("n must be > 0")
    if n == 1:
        return Graph(1, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    spokes = np.arange(1, n)
    return Graph(n, np.zeros(n - 1, dtype=np.int64), spokes)


def complete_graph(n: int) -> Graph:
    """All ordered pairs (u, v), u ≠ v."""
    if n <= 0:
        raise ValueError("n must be > 0")
    u, v = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = u != v
    return Graph(n, u[mask], v[mask])


def grid_graph(rows: int, cols: int) -> Graph:
    """4-neighbor grid, both edge directions (diameter = rows + cols - 2)."""
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be > 0")
    n = rows * cols
    ids = np.arange(n).reshape(rows, cols)
    right = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    down = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    src = np.concatenate([right[0], down[0], right[1], down[1]])
    dst = np.concatenate([right[1], down[1], right[0], down[0]])
    return Graph(n, src, dst)
