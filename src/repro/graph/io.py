"""Edge-list I/O.

Graphalytics distributes datasets as whitespace-separated edge lists with
one ``src dst`` pair per line (``.e`` files) and a vertex list (``.v``).
This module reads and writes that format, so externally produced datasets
can be fed to the simulated systems.
"""

from __future__ import annotations

import io
import warnings
from pathlib import Path

import numpy as np

from .graph import Graph

__all__ = ["read_edge_list", "write_edge_list"]


def read_edge_list(
    path: str | Path | io.TextIOBase,
    *,
    n_vertices: int | None = None,
    comments: str = "#",
    dedup: bool = False,
) -> Graph:
    """Read a ``src dst`` edge list into a :class:`Graph`.

    Vertex ids need not be contiguous: ids are compacted to ``0..n-1``
    unless ``n_vertices`` is given, in which case ids are taken literally
    and must fall in range.
    """
    with warnings.catch_warnings():
        # Empty files are a legal edge list; silence numpy's empty-input note.
        warnings.simplefilter("ignore", UserWarning)
        data = np.loadtxt(path, dtype=np.int64, comments=comments, ndmin=2)
    if data.size == 0:
        return Graph(n_vertices or 0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if data.shape[1] < 2:
        raise ValueError("edge list must have at least two columns (src dst)")
    src, dst = data[:, 0], data[:, 1]
    if n_vertices is None:
        ids = np.unique(np.concatenate([src, dst]))
        lookup = np.searchsorted(ids, src), np.searchsorted(ids, dst)
        return Graph(ids.size, lookup[0], lookup[1], dedup=dedup)
    return Graph(n_vertices, src, dst, dedup=dedup)


def write_edge_list(graph: Graph, path: str | Path | io.TextIOBase) -> None:
    """Write a graph as a ``src dst`` edge list."""
    src, dst = graph.edges()
    data = np.column_stack([src, dst])
    np.savetxt(path, data, fmt="%d")
