"""Compressed-sparse-row graph representation.

The simulated systems and the vectorized algorithms both operate on a CSR
adjacency structure (contiguous numpy arrays), the idiomatic layout for
vectorized graph kernels: neighbor expansion of a vertex set is two array
gathers, degree queries are a diff of the index array, and everything stays
cache-friendly.

Graphs are directed; undirected graphs are represented by storing both
orientations of every edge (:meth:`Graph.to_undirected`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Graph"]


class Graph:
    """A directed graph in CSR form.

    Parameters
    ----------
    n_vertices:
        Number of vertices, ids ``0 .. n_vertices - 1``.
    src, dst:
        Parallel edge arrays.  Duplicate edges and self-loops are kept
        unless ``dedup`` is set.
    dedup:
        Remove duplicate edges (keeping one copy) and self-loops.
    """

    def __init__(
        self,
        n_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        dedup: bool = False,
    ) -> None:
        if n_vertices < 0:
            raise ValueError(f"n_vertices must be >= 0, got {n_vertices}")
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size and (src.min() < 0 or src.max() >= n_vertices):
            raise ValueError("src contains out-of-range vertex ids")
        if dst.size and (dst.min() < 0 or dst.max() >= n_vertices):
            raise ValueError("dst contains out-of-range vertex ids")

        if dedup and src.size:
            keep = src != dst
            src, dst = src[keep], dst[keep]
            key = src * n_vertices + dst
            _, unique_idx = np.unique(key, return_index=True)
            src, dst = src[unique_idx], dst[unique_idx]

        self.n_vertices = int(n_vertices)
        order = np.lexsort((dst, src))
        self._src = np.ascontiguousarray(src[order])
        self._dst = np.ascontiguousarray(dst[order])
        counts = np.bincount(self._src, minlength=n_vertices)
        self._indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        self._in_degree: np.ndarray | None = None
        self._reverse: "Graph | None" = None

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_edges(self) -> int:
        return int(self._dst.size)

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointer: out-edges of ``v`` are ``indices[indptr[v]:indptr[v+1]]``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column indices (edge destinations in source-sorted order)."""
        return self._dst

    @property
    def edge_sources(self) -> np.ndarray:
        """Edge source array aligned with :attr:`indices`."""
        return self._src

    def out_degree(self, v: int | np.ndarray | None = None) -> np.ndarray | int:
        """Out-degrees of all vertices (or of ``v``)."""
        degs = np.diff(self._indptr)
        if v is None:
            return degs
        if np.ndim(v) == 0:
            return int(degs[v])
        return degs[np.asarray(v)]

    def in_degree(self, v: int | np.ndarray | None = None) -> np.ndarray | int:
        """In-degrees of all vertices (or of ``v``), computed lazily."""
        if self._in_degree is None:
            self._in_degree = np.bincount(self._dst, minlength=self.n_vertices)
        if v is None:
            return self._in_degree
        if np.ndim(v) == 0:
            return int(self._in_degree[v])
        return self._in_degree[np.asarray(v)]

    def neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` (a view into the CSR arrays)."""
        return self._dst[self._indptr[v] : self._indptr[v + 1]]

    def edges(self) -> tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` arrays in CSR order (views; do not mutate)."""
        return self._src, self._dst

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def reverse(self) -> "Graph":
        """The transpose graph (cached); used by pull-style kernels."""
        if self._reverse is None:
            self._reverse = Graph(self.n_vertices, self._dst, self._src)
        return self._reverse

    def to_undirected(self) -> "Graph":
        """Both orientations of every edge, deduplicated, no self-loops."""
        src = np.concatenate([self._src, self._dst])
        dst = np.concatenate([self._dst, self._src])
        return Graph(self.n_vertices, src, dst, dedup=True)

    # ------------------------------------------------------------------ #
    # Interop & debugging
    # ------------------------------------------------------------------ #
    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` (for validation in tests)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n_vertices))
        g.add_edges_from(zip(self._src.tolist(), self._dst.tolist()))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n_vertices={self.n_vertices}, n_edges={self.n_edges})"
