"""Graph partitioning: edge-cut (Giraph-style) and vertex-cut (PowerGraph-style).

Distributed graph frameworks distribute work by partitioning the graph:

* **Edge-cut** partitioners assign *vertices* to workers; a worker owns its
  vertices and their out-edges, and messages crossing the cut travel over
  the network.  Giraph hash-partitions vertices by default.
* **Vertex-cut** partitioners assign *edges* to machines; vertices spanning
  several machines are replicated (one master, n-1 mirrors), and mirror
  synchronization is what crosses the network.  PowerGraph introduced this
  to split high-degree vertices.

Partition quality (balance, cut size / replication factor) drives the
workload imbalance the paper measures, so the partitioners expose those
statistics directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import Graph

__all__ = [
    "EdgeCutPartition",
    "VertexCutPartition",
    "hash_edge_cut",
    "range_edge_cut",
    "random_vertex_cut",
    "grid_vertex_cut",
    "greedy_vertex_cut",
]

# Multiplicative hash constant (Knuth); cheap, vectorized, well-mixing.
_HASH_MULT = np.int64(-7046029254386353131)  # 0x9E3779B97F4A7C15 as signed


def _mix_hash(x: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized 64-bit integer mix for bucket assignment."""
    with np.errstate(over="ignore"):
        h = (np.asarray(x, dtype=np.int64) + np.int64(seed)) * _HASH_MULT
        h ^= h >> np.int64(31)
        h *= _HASH_MULT
        h ^= h >> np.int64(29)
    return np.abs(h)


@dataclass
class EdgeCutPartition:
    """Vertex ownership for an edge-cut partitioning.

    ``owner[v]`` is the partition owning vertex ``v``; edges belong to the
    partition of their source (out-edge ownership, as in Pregel/Giraph).
    """

    graph: Graph
    n_partitions: int
    owner: np.ndarray

    def __post_init__(self) -> None:
        if self.owner.shape != (self.graph.n_vertices,):
            raise ValueError("owner must have one entry per vertex")
        if self.owner.size and (self.owner.min() < 0 or self.owner.max() >= self.n_partitions):
            raise ValueError("owner contains out-of-range partition ids")

    def vertices_of(self, p: int) -> np.ndarray:
        """Vertex ids owned by partition ``p``."""
        return np.nonzero(self.owner == p)[0]

    def vertex_counts(self) -> np.ndarray:
        """Vertices per partition."""
        return np.bincount(self.owner, minlength=self.n_partitions)

    def edge_counts(self) -> np.ndarray:
        """Out-edges owned by each partition."""
        src, _ = self.graph.edges()
        return np.bincount(self.owner[src], minlength=self.n_partitions)

    def cut_edges(self) -> int:
        """Number of edges whose endpoints live on different partitions."""
        src, dst = self.graph.edges()
        return int(np.count_nonzero(self.owner[src] != self.owner[dst]))

    def cut_fraction(self) -> float:
        """Fraction of edges crossing partitions."""
        if self.graph.n_edges == 0:
            return 0.0
        return self.cut_edges() / self.graph.n_edges

    def edge_balance(self) -> float:
        """Max/mean ratio of per-partition edge counts (1.0 = perfect)."""
        counts = self.edge_counts()
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0


@dataclass
class VertexCutPartition:
    """Edge placement for a vertex-cut partitioning.

    ``edge_machine[e]`` is the machine of edge ``e`` (CSR order);
    ``master[v]`` is the machine holding vertex ``v``'s master replica.
    """

    graph: Graph
    n_machines: int
    edge_machine: np.ndarray
    master: np.ndarray

    def __post_init__(self) -> None:
        if self.edge_machine.shape != (self.graph.n_edges,):
            raise ValueError("edge_machine must have one entry per edge")
        if self.master.shape != (self.graph.n_vertices,):
            raise ValueError("master must have one entry per vertex")

    def edge_counts(self) -> np.ndarray:
        """Edges per machine."""
        return np.bincount(self.edge_machine, minlength=self.n_machines)

    def replicas_of(self, v: int) -> np.ndarray:
        """Machines holding a replica of ``v`` (master included)."""
        src, dst = self.graph.edges()
        machines = np.concatenate(
            [
                self.edge_machine[src == v],
                self.edge_machine[dst == v],
                [self.master[v]],
            ]
        )
        return np.unique(machines)

    def replication_factor(self) -> float:
        """Average number of replicas per vertex (PowerGraph's key metric)."""
        if self.graph.n_vertices == 0:
            return 0.0
        src, dst = self.graph.edges()
        # Count distinct (vertex, machine) pairs over both endpoints + masters.
        v_all = np.concatenate([src, dst, np.arange(self.graph.n_vertices)])
        m_all = np.concatenate([self.edge_machine, self.edge_machine, self.master])
        pairs = v_all * np.int64(self.n_machines) + m_all
        return float(np.unique(pairs).size / self.graph.n_vertices)

    def edge_balance(self) -> float:
        """Max/mean ratio of per-machine edge counts (1.0 = perfect)."""
        counts = self.edge_counts()
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0


# ---------------------------------------------------------------------- #
# Edge-cut partitioners
# ---------------------------------------------------------------------- #


def hash_edge_cut(graph: Graph, n_partitions: int, *, seed: int = 0) -> EdgeCutPartition:
    """Giraph's default: hash vertex ids onto partitions.

    Balances vertex counts well but ignores edge skew — high-degree
    vertices make some partitions edge-heavy, the irregularity Grade10's
    imbalance analysis surfaces.
    """
    if n_partitions <= 0:
        raise ValueError(f"n_partitions must be > 0, got {n_partitions}")
    owner = _mix_hash(np.arange(graph.n_vertices), seed) % n_partitions
    return EdgeCutPartition(graph, n_partitions, owner.astype(np.int64))


def range_edge_cut(graph: Graph, n_partitions: int) -> EdgeCutPartition:
    """Contiguous id ranges with (approximately) equal vertex counts."""
    if n_partitions <= 0:
        raise ValueError(f"n_partitions must be > 0, got {n_partitions}")
    owner = (
        np.arange(graph.n_vertices, dtype=np.int64) * n_partitions // max(graph.n_vertices, 1)
    )
    return EdgeCutPartition(graph, n_partitions, np.minimum(owner, n_partitions - 1))


# ---------------------------------------------------------------------- #
# Vertex-cut partitioners
# ---------------------------------------------------------------------- #


def _masters_from_edges(graph: Graph, n_machines: int, seed: int) -> np.ndarray:
    """Assign each vertex's master by hashing, like PowerGraph."""
    return (_mix_hash(np.arange(graph.n_vertices), seed + 1) % n_machines).astype(np.int64)


def random_vertex_cut(graph: Graph, n_machines: int, *, seed: int = 0) -> VertexCutPartition:
    """PowerGraph's *random* ingress: hash each edge onto a machine."""
    if n_machines <= 0:
        raise ValueError(f"n_machines must be > 0, got {n_machines}")
    src, dst = graph.edges()
    with np.errstate(over="ignore"):
        key = src * np.int64(0x1F123BB5) + dst
    machine = (_mix_hash(key, seed) % n_machines).astype(np.int64)
    return VertexCutPartition(graph, n_machines, machine, _masters_from_edges(graph, n_machines, seed))


def grid_vertex_cut(graph: Graph, n_machines: int, *, seed: int = 0) -> VertexCutPartition:
    """PowerGraph's *grid* ingress: constrain edge (u, v) to the
    intersection of u's row and v's column in a machine grid.

    Bounds the replication factor at ``2√M - 1`` while staying fully
    vectorized.  When ``n_machines`` is not a perfect square the grid is
    rectangular (``r × c`` with ``r*c >= n_machines``) and cells are folded
    back onto real machines modulo ``n_machines``.
    """
    if n_machines <= 0:
        raise ValueError(f"n_machines must be > 0, got {n_machines}")
    rows = int(np.floor(np.sqrt(n_machines)))
    cols = int(np.ceil(n_machines / rows))
    src, dst = graph.edges()
    r = _mix_hash(src, seed) % rows
    c = _mix_hash(dst, seed + 7) % cols
    machine = ((r * cols + c) % n_machines).astype(np.int64)
    return VertexCutPartition(graph, n_machines, machine, _masters_from_edges(graph, n_machines, seed))


def greedy_vertex_cut(graph: Graph, n_machines: int, *, seed: int = 0) -> VertexCutPartition:
    """PowerGraph's *greedy (oblivious)* ingress.

    Sequential over edges (the heuristic is inherently stateful): place
    edge (u, v) on a machine already holding replicas of both endpoints if
    possible, else of one endpoint (the one with more unplaced edges), else
    the least-loaded machine.  Use for small/medium graphs; the hashed
    cuts above are the vectorized choices for large ones.
    """
    if n_machines <= 0:
        raise ValueError(f"n_machines must be > 0, got {n_machines}")
    src, dst = graph.edges()
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    replicas = np.zeros((n, n_machines), dtype=bool)
    load = np.zeros(n_machines, dtype=np.int64)
    remaining = np.asarray(graph.out_degree()) + np.asarray(graph.in_degree())
    machine = np.empty(graph.n_edges, dtype=np.int64)

    order = rng.permutation(graph.n_edges)
    for e in order:
        u, v = src[e], dst[e]
        both = replicas[u] & replicas[v]
        if both.any():
            cands = np.nonzero(both)[0]
        else:
            ru, rv = replicas[u], replicas[v]
            if ru.any() or rv.any():
                # Favour the endpoint with more work left to place.
                cands = np.nonzero(ru if remaining[u] >= remaining[v] else rv)[0]
                if cands.size == 0:
                    cands = np.nonzero(ru | rv)[0]
            else:
                cands = np.arange(n_machines)
        m = cands[np.argmin(load[cands])]
        machine[e] = m
        replicas[u, m] = True
        replicas[v, m] = True
        load[m] += 1
        remaining[u] -= 1
        remaining[v] -= 1
    return VertexCutPartition(graph, n_machines, machine, _masters_from_edges(graph, n_machines, seed))
