"""Community detection by label propagation (Graphalytics CDLP).

Every vertex adopts the label most frequent among its incoming neighbors,
breaking ties toward the smallest label, for a fixed number of iterations
(the Graphalytics/Raghavan et al. formulation).  All vertices are active
every iteration and each iteration scans every edge — CDLP is the
heaviest of the paper's four algorithms, and its Gather-step imbalance on
PowerGraph is the centerpiece of the paper's Figure 5/6 case study.

The per-iteration mode computation is vectorized as a lexsort +
run-length reduction over (destination, label) pairs: ``O(E log E)`` with
no Python loop over edges.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import AlgorithmResult, IterationStats

__all__ = ["cdlp"]


def _mode_per_vertex(dst: np.ndarray, labels_in: np.ndarray, n: int) -> np.ndarray:
    """For each destination vertex, the most frequent incoming label.

    Ties break toward the smaller label.  Vertices with no incoming edge
    get label ``-1`` (caller keeps their old label).
    """
    if dst.size == 0:
        return np.full(n, -1, dtype=np.int64)
    order = np.lexsort((labels_in, dst))
    d = dst[order]
    l = labels_in[order]
    # Run boundaries of identical (dst, label) pairs.
    boundary = np.empty(d.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (d[1:] != d[:-1]) | (l[1:] != l[:-1])
    run_starts = np.nonzero(boundary)[0]
    run_counts = np.diff(np.append(run_starts, d.size))
    run_dst = d[run_starts]
    run_label = l[run_starts]
    # Within each destination pick the run with the highest count; ties
    # resolve to the smallest label because runs are label-sorted and
    # argmax keeps the first maximum.
    out = np.full(n, -1, dtype=np.int64)
    # Order runs by (dst, count desc, label asc) and keep the first run of
    # each destination: that run is the mode with smallest-label tiebreak.
    order2 = np.lexsort((run_label, -run_counts, run_dst))
    rd = run_dst[order2]
    first = np.empty(rd.size, dtype=bool)
    first[0] = True
    first[1:] = rd[1:] != rd[:-1]
    out[rd[first]] = run_label[order2][first]
    return out


def cdlp(graph: Graph, *, iterations: int = 10) -> AlgorithmResult:
    """Community detection by label propagation; values are final labels."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    n = graph.n_vertices
    src, dst = graph.edges()
    labels = np.arange(n, dtype=np.int64)
    result = AlgorithmResult("cdlp", labels)
    all_active = np.ones(n, dtype=bool)

    for it in range(iterations):
        incoming = _mode_per_vertex(dst, labels[src], n)
        new_labels = np.where(incoming >= 0, incoming, labels)
        labels = new_labels
        result.iterations.append(
            IterationStats(
                iteration=it,
                active=all_active,
                edges_processed=graph.n_edges,
                messages=graph.n_edges,
            )
        )
    result.values = labels
    return result
