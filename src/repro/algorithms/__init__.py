"""Graph algorithms (the Graphalytics kernel set) with work statistics.

Each algorithm returns an :class:`~repro.algorithms.base.AlgorithmResult`
whose per-iteration active masks feed the system simulators.  ``ALGORITHMS``
maps Graphalytics short names to callables taking a graph (and keyword
parameters).
"""

from .base import AlgorithmResult, IterationStats
from .bfs import bfs
from .cdlp import cdlp
from .lcc import lcc
from .pagerank import pagerank
from .sssp import default_weights, sssp
from .wcc import wcc

#: Graphalytics short-name registry.
ALGORITHMS = {
    "bfs": bfs,
    "pr": pagerank,
    "wcc": wcc,
    "cdlp": cdlp,
    "sssp": sssp,
    "lcc": lcc,
}

__all__ = [
    "AlgorithmResult",
    "IterationStats",
    "bfs",
    "pagerank",
    "wcc",
    "cdlp",
    "sssp",
    "lcc",
    "default_weights",
    "ALGORITHMS",
]
