"""PageRank (Graphalytics PR).

Power iteration with damping, push-style: each vertex divides its rank
over its out-edges; dangling mass is redistributed uniformly (the
Graphalytics specification).  Fixed iteration count by default, or run to
an L1 convergence tolerance — the dynamic-termination behaviour the paper
cites as a source of workload irregularity.

The kernel is one ``bincount`` scatter-add per iteration.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import AlgorithmResult, IterationStats

__all__ = ["pagerank"]


def pagerank(
    graph: Graph,
    *,
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float | None = None,
) -> AlgorithmResult:
    """PageRank by power iteration.

    With ``tolerance`` set, stops early once the L1 change drops below it
    (still capped by ``iterations``).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    n = graph.n_vertices
    if n == 0:
        return AlgorithmResult("pagerank", np.empty(0))
    src, dst = graph.edges()
    out_deg = np.asarray(graph.out_degree(), dtype=np.float64)
    dangling = out_deg == 0
    safe_deg = np.where(dangling, 1.0, out_deg)

    pr = np.full(n, 1.0 / n)
    result = AlgorithmResult("pagerank", pr)
    base = (1.0 - damping) / n
    all_active = np.ones(n, dtype=bool)

    for it in range(iterations):
        contrib = pr / safe_deg
        incoming = np.bincount(dst, weights=contrib[src], minlength=n)
        dangling_mass = pr[dangling].sum() / n
        new_pr = base + damping * (incoming + dangling_mass)
        delta = float(np.abs(new_pr - pr).sum())
        pr = new_pr
        result.iterations.append(
            IterationStats(
                iteration=it,
                active=all_active,
                edges_processed=graph.n_edges,
                messages=graph.n_edges,
            )
        )
        if tolerance is not None and delta < tolerance:
            break
    result.values = pr
    return result
