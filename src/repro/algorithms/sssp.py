"""Single-source shortest paths (Graphalytics SSSP).

Bellman-Ford-style frontier relaxation over weighted edges: each round
relaxes the out-edges of vertices whose distance improved last round.
Weights may be supplied per edge or derived deterministically from the
edge endpoints (hash-based), so datasets without explicit weights remain
reproducible.

Relaxation is a vectorized ``np.minimum.at`` scatter.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import AlgorithmResult, IterationStats

__all__ = ["sssp", "default_weights"]

#: Distance value for unreached vertices.
UNREACHED = np.inf


def default_weights(graph: Graph, *, seed: int = 0) -> np.ndarray:
    """Deterministic pseudo-random weights in ``[1, 2)`` per edge."""
    src, dst = graph.edges()
    with np.errstate(over="ignore"):
        h = (src * np.int64(2654435761) + dst * np.int64(40503) + np.int64(seed)) & np.int64(
            0x7FFFFFFF
        )
    return 1.0 + (h.astype(np.float64) / float(0x80000000))


def sssp(
    graph: Graph,
    source: int = 0,
    *,
    weights: np.ndarray | None = None,
    max_iterations: int | None = None,
) -> AlgorithmResult:
    """Single-source shortest paths; values are distances (inf = unreached)."""
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    src, dst = graph.edges()
    if weights is None:
        weights = default_weights(graph)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != src.shape:
            raise ValueError("weights must have one entry per edge")
        if (weights < 0).any():
            raise ValueError("negative edge weights are not supported")

    dist = np.full(n, UNREACHED)
    dist[source] = 0.0
    active = np.zeros(n, dtype=bool)
    active[source] = True
    result = AlgorithmResult("sssp", dist)

    it = 0
    while active.any():
        if max_iterations is not None and it >= max_iterations:
            break
        live = active[src]
        edges_processed = int(np.count_nonzero(live))
        result.iterations.append(
            IterationStats(
                iteration=it,
                active=active.copy(),
                edges_processed=edges_processed,
                messages=edges_processed,
            )
        )
        new_dist = dist.copy()
        np.minimum.at(new_dist, dst[live], dist[src[live]] + weights[live])
        active = new_dist < dist
        dist = new_dist
        it += 1
    result.values = dist
    return result
