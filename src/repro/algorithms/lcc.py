"""Local clustering coefficient (Graphalytics LCC).

For each vertex, the fraction of pairs of its (undirected) neighbors that
are themselves connected.  One conceptual superstep with per-vertex work
proportional to the square of the degree — the most work-skewed of the
Graphalytics kernels, useful for stressing the imbalance analysis.

Triangle counting is done per-vertex by merging sorted adjacency lists via
``np.intersect1d`` on CSR slices; cost is ``O(Σ d(v) log d)``.  For the
graph sizes used in this repo (≤ a few hundred thousand edges) this is
fast enough; the per-vertex loop is the algorithm's intrinsic structure
(neighbor-set intersection has no pure-array form without materializing
``O(Σ d²)`` pairs).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import AlgorithmResult, IterationStats

__all__ = ["lcc"]


def lcc(graph: Graph) -> AlgorithmResult:
    """Local clustering coefficient per vertex (on the undirected view)."""
    n = graph.n_vertices
    und = graph.to_undirected()
    indptr, indices = und.indptr, und.indices
    coeff = np.zeros(n, dtype=np.float64)
    triangles = 0

    for v in range(n):
        nbrs = indices[indptr[v] : indptr[v + 1]]
        d = nbrs.size
        if d < 2:
            continue
        # Count edges among neighbors: for each neighbor u, |N(u) ∩ N(v)|.
        links = 0
        for u in nbrs:
            u_nbrs = indices[indptr[u] : indptr[u + 1]]
            # Both lists are sorted (CSR construction sorts); searchsorted
            # membership test is the cheap intersection size.
            pos = np.searchsorted(u_nbrs, nbrs)
            pos = np.minimum(pos, u_nbrs.size - 1)
            links += int(np.count_nonzero(u_nbrs[pos] == nbrs)) if u_nbrs.size else 0
        triangles += links
        coeff[v] = links / (d * (d - 1))

    result = AlgorithmResult("lcc", coeff)
    result.iterations.append(
        IterationStats(
            iteration=0,
            active=np.ones(n, dtype=bool),
            edges_processed=int(np.sum(np.asarray(und.out_degree(), dtype=np.int64) ** 2)),
            messages=und.n_edges,
        )
    )
    return result
