"""Weakly connected components (Graphalytics WCC).

Label propagation with minimum-label convergence: every vertex starts with
its own id, repeatedly adopts the smallest label among itself and its
(undirected) neighbors, and the algorithm terminates when no label changes.
The per-iteration active sets shrink geometrically — a second kind of
irregular work profile, complementary to BFS's frontier bulge.

The relaxation step is a vectorized ``np.minimum.at`` scatter over the
edges incident to active vertices.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import AlgorithmResult, IterationStats

__all__ = ["wcc"]


def wcc(graph: Graph, *, max_iterations: int = 1000) -> AlgorithmResult:
    """Weakly connected components; values are per-vertex component labels.

    Component labels are the minimum vertex id in each component.
    """
    n = graph.n_vertices
    und = graph.to_undirected()
    src, dst = und.edges()

    labels = np.arange(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    result = AlgorithmResult("wcc", labels)

    it = 0
    while active.any() and it < max_iterations:
        # Only edges leaving an active vertex can lower a label this round
        # (labels only travel from a vertex that changed last round).
        live = active[src]
        edges_processed = int(np.count_nonzero(live))
        result.iterations.append(
            IterationStats(
                iteration=it,
                active=active.copy(),
                edges_processed=edges_processed,
                messages=edges_processed,
            )
        )
        new_labels = labels.copy()
        np.minimum.at(new_labels, dst[live], labels[src[live]])
        active = new_labels != labels
        labels = new_labels
        it += 1
    result.values = labels
    return result
