"""Breadth-first search (Graphalytics BFS).

Computes the hop distance from a source vertex to every reachable vertex.
The per-iteration frontier sizes are the canonical example of irregular
graph work: tiny frontiers at the start and end, an explosion in the
middle (the paper's §I top-down traversal example).

Frontier expansion is vectorized as a mask over the edge arrays
(``O(E)`` per level, no Python loop over vertices or edges).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import AlgorithmResult, IterationStats

__all__ = ["bfs", "UNREACHED"]

#: Distance value for unreached vertices.
UNREACHED = np.int64(-1)


def bfs(graph: Graph, source: int = 0, *, max_iterations: int | None = None) -> AlgorithmResult:
    """Single-source BFS returning hop distances.

    Parameters
    ----------
    graph:
        Directed input graph.
    source:
        Source vertex.
    max_iterations:
        Optional safety cap on the number of levels.
    """
    n = graph.n_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    src, dst = graph.edges()

    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[source] = True

    result = AlgorithmResult("bfs", dist)
    level = 0
    while frontier.any():
        if max_iterations is not None and level >= max_iterations:
            break
        out_edges = frontier[src]
        edges_processed = int(np.count_nonzero(out_edges))
        targets = dst[out_edges]
        fresh = np.zeros(n, dtype=bool)
        fresh[targets] = True
        fresh &= dist == UNREACHED
        result.iterations.append(
            IterationStats(
                iteration=level,
                active=frontier.copy(),
                edges_processed=edges_processed,
                messages=edges_processed,
            )
        )
        level += 1
        dist[fresh] = level
        frontier = fresh
    return result
