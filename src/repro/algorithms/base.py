"""Common result types for graph algorithms.

Every algorithm returns, besides its output values, a per-iteration record
of *which vertices were active*.  The system simulators derive per-machine,
per-thread work from these masks and the graph partitioning — that is what
makes the simulated execution traces carry the real irregularity of the
real algorithm on the real graph (frontier explosions in BFS, uniform heavy
work in PageRank, skewed label churn in CDLP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationStats", "AlgorithmResult"]


@dataclass
class IterationStats:
    """Work statistics of one iteration (superstep) of an algorithm.

    ``active`` is the boolean mask of vertices that executed this iteration;
    ``edges_processed`` counts edge traversals; ``messages`` counts values
    sent between vertices (≈ network traffic in a distributed run).
    """

    iteration: int
    active: np.ndarray
    edges_processed: int
    messages: int

    @property
    def active_count(self) -> int:
        return int(np.count_nonzero(self.active))


@dataclass
class AlgorithmResult:
    """Output of an algorithm run plus its per-iteration work profile."""

    name: str
    values: np.ndarray
    iterations: list[IterationStats] = field(default_factory=list)

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    def total_edges_processed(self) -> int:
        """Total edge traversals across all iterations."""
        return sum(it.edges_processed for it in self.iterations)

    def total_messages(self) -> int:
        """Total messages sent across all iterations."""
        return sum(it.messages for it in self.iterations)
