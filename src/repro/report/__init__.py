"""Report generation: shareable artifacts of a characterized run.

The pipeline's inward-facing observability (:mod:`repro.obs`) measures
the reproduction itself; this package is the outward-facing half — it
fuses the three artifact classes the pipeline produces
(:class:`~repro.core.PerformanceProfile`, obs traces/counters, and
``BENCH_pipeline.json`` documents) into operator-facing deliverables:

* :func:`render_html_report` / :func:`write_html_report` — one
  self-contained zero-dependency HTML file per run (inline SVG flame
  view, per-machine resource heatmaps with bottleneck ribbons, issue and
  straggler tables, optional diff / pipeline / bench sections);
* :func:`write_suite_report` — per-cell reports plus a linking
  ``index.html`` for whole-sweep runs;
* the OpenMetrics exposition lives in
  :func:`repro.obs.metrics_exposition` (scrapeable counterpart of the
  same data).
"""

from .html import (
    OPTIONAL_SECTIONS,
    REPORT_SECTIONS,
    render_html_report,
    report_sections,
    write_html_report,
)
from .suite import cell_slug, write_suite_report

__all__ = [
    "OPTIONAL_SECTIONS",
    "REPORT_SECTIONS",
    "cell_slug",
    "render_html_report",
    "report_sections",
    "write_html_report",
    "write_suite_report",
]
