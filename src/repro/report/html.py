"""Self-contained HTML run reports (the outward-facing half of Fig. 1 step 10).

The text report (:mod:`repro.core.report`) serves the terminal; this module
renders the same characterization as a single shareable HTML file an
operator can open anywhere: **zero external assets** — styles, SVG charts,
and data are all inline, so the file renders without network access and can
be archived next to the run it describes.

Anatomy (every ``<section>`` carries a stable ``id`` the golden-structure
test asserts against, see :data:`REPORT_SECTIONS`):

* ``overview`` — run metadata and headline numbers,
* ``phases`` — the phase-hierarchy flame view (inline SVG; node width is
  total duration, rows are hierarchy depth),
* ``resources`` — per-machine resource-timeline heatmaps with red
  bottleneck ribbons under each saturated/capped resource,
* ``bottlenecks`` — per-resource totals split by detection kind,
* ``issues`` — the ranked performance issues with optimistic impact,
* ``outliers`` — straggler groups,
* ``diff`` *(optional)* — before/after comparison via :mod:`repro.core.diff`,
* ``pipeline`` *(optional)* — the pipeline's own stage timings/counters
  from a :mod:`repro.obs` trace,
* ``bench`` *(optional)* — a ``BENCH_pipeline.json`` document.
"""

from __future__ import annotations

import html as _html
import json
from io import StringIO
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..core.bottlenecks import BottleneckKind
from ..core.diff import ProfileDiff, diff_to_dict
from ..core.hierarchy import PhaseSummary, summarize
from ..core.profile import PerformanceProfile
from ..ioutils import atomic_write_text

__all__ = [
    "REPORT_SECTIONS",
    "OPTIONAL_SECTIONS",
    "render_html_report",
    "report_sections",
    "write_html_report",
]

#: Sections every report contains, in document order.
REPORT_SECTIONS = (
    "overview",
    "phases",
    "resources",
    "bottlenecks",
    "issues",
    "outliers",
)

#: Sections present only when their artifact is supplied.
OPTIONAL_SECTIONS = ("diff", "pipeline", "bench")

#: Heatmaps and flame views are downsampled to at most this many columns.
_MAX_COLUMNS = 240

_PLOT_WIDTH = 880
_LABEL_WIDTH = 150
_ROW_HEIGHT = 16
_RIBBON_HEIGHT = 4

#: Flame-view fill per hierarchy depth (cycled when deeper).
_FLAME_COLORS = ("#30588c", "#3f74a8", "#5590bd", "#74abcd", "#9ac4dc", "#c3dbe8")

_CSS = """
:root { color-scheme: light; }
body { font: 14px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 0 auto; max-width: 1060px; padding: 0 24px 48px;
       color: #1c2733; background: #fdfdfc; }
h1 { font-size: 22px; margin: 28px 0 4px; }
h2 { font-size: 17px; margin: 32px 0 8px; border-bottom: 1px solid #d8dde3;
     padding-bottom: 4px; }
h3 { font-size: 14px; margin: 14px 0 4px; color: #45515e; }
.meta { color: #5d6b7a; font-size: 13px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 14px 0; }
.tile { background: #f1f4f7; border-radius: 6px; padding: 8px 14px; }
.tile .v { font-size: 19px; font-weight: 600; display: block; }
.tile .k { font-size: 12px; color: #5d6b7a; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { text-align: left; padding: 3px 12px 3px 0; font-size: 13px; }
th { color: #45515e; border-bottom: 1px solid #c9d1d9; }
td.num, th.num { text-align: right; }
tr:nth-child(even) td { background: #f6f8fa; }
svg text { font: 10px -apple-system, "Segoe UI", Roboto, sans-serif; }
.empty { color: #7c8894; font-style: italic; }
.good { color: #1e7d45; } .bad { color: #b3362a; }
footer { margin-top: 40px; font-size: 12px; color: #7c8894; }
"""


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _fmt_seconds(s: float) -> str:
    if s >= 100.0:
        return f"{s:,.0f}s"
    if s >= 1.0:
        return f"{s:.2f}s"
    return f"{s * 1000.0:.1f}ms"


def _downsample_mean(values: np.ndarray, columns: int) -> np.ndarray:
    if values.size <= columns:
        return values.astype(float)
    return np.array([chunk.mean() for chunk in np.array_split(values, columns)])


def _downsample_any(mask: np.ndarray, columns: int) -> np.ndarray:
    if mask.size <= columns:
        return mask.astype(bool)
    return np.array([bool(chunk.any()) for chunk in np.array_split(mask, columns)])


def _utilization_color(u: float) -> str:
    """Sequential ramp for utilization: pale → deep blue, red when over capacity."""
    if u > 1.0:
        return "#c0392b"
    lo, hi = (242, 246, 250), (31, 78, 140)
    t = min(max(u, 0.0), 1.0)
    r, g, b = (round(a + (b_ - a) * t) for a, b_ in zip(lo, hi))
    return f"#{r:02x}{g:02x}{b:02x}"


# ---------------------------------------------------------------------- #
# Section renderers
# ---------------------------------------------------------------------- #


def _tile(value: str, caption: str) -> str:
    return f'<div class="tile"><span class="v">{_esc(value)}</span><span class="k">{_esc(caption)}</span></div>'


def _table(
    headers: list[str], rows: list[list[Any]], *, numeric: set[int] | None = None
) -> str:
    if numeric is None:
        numeric = set(range(1, len(headers)))
    out = StringIO()
    out.write("<table><thead><tr>")
    for i, h in enumerate(headers):
        cls = ' class="num"' if i in numeric else ""
        out.write(f"<th{cls}>{_esc(h)}</th>")
    out.write("</tr></thead><tbody>")
    for row in rows:
        out.write("<tr>")
        for i, cell in enumerate(row):
            cls = ' class="num"' if i in numeric else ""
            out.write(f"<td{cls}>{cell if str(cell).startswith('<') else _esc(cell)}</td>")
        out.write("</tr>")
    out.write("</tbody></table>")
    return out.getvalue()


def _section_overview(profile: PerformanceProfile, title: str) -> str:
    trace = profile.execution_trace
    n_machines = len({i.machine for i in trace.instances() if i.machine is not None})
    total_bottleneck = sum(b.duration for b in profile.bottlenecks)
    tiles = [
        _tile(_fmt_seconds(profile.makespan), "makespan"),
        _tile(str(len(trace)), "phase instances"),
        _tile(str(len({i.phase_path for i in trace.instances()})), "phase types"),
        _tile(str(profile.grid.n_slices), "timeslices"),
        _tile(str(len(profile.upsampled.resources())), "monitored resources"),
        _tile(str(max(n_machines, 1)), "machines"),
        _tile(_fmt_seconds(total_bottleneck), "bottlenecked phase-seconds"),
        _tile(str(len(profile.issues)), "issues detected"),
        _tile(f"{profile.outliers.affected_fraction:.0%}", "outlier-affected steps"),
    ]
    return (
        f'<section id="overview"><h1>{_esc(title)}</h1>'
        f'<p class="meta">timeslice {profile.grid.slice_duration * 1000:.0f}ms · '
        f"grid origin {profile.grid.t0:.3f}s</p>"
        f'<div class="tiles">{"".join(tiles)}</div></section>'
    )


def _flame_rects(
    node: PhaseSummary, x: float, width: float, depth: int, out: list[str]
) -> int:
    """Emit one flame row per hierarchy level; returns the deepest level used."""
    children = sorted(
        node.children.values(), key=lambda c: c.total_duration, reverse=True
    )
    scale_total = node.total_duration
    if scale_total <= 0.0:
        scale_total = sum(c.total_duration for c in children)
    deepest = depth
    cursor = x
    for child in children:
        if scale_total <= 0.0 or child.total_duration <= 0.0:
            continue
        w = min(width * child.total_duration / scale_total, x + width - cursor)
        if w < 0.5:
            continue
        y = depth * (_ROW_HEIGHT + 2)
        color = _FLAME_COLORS[depth % len(_FLAME_COLORS)]
        name = child.phase_path.rsplit("/", 1)[-1]
        tip = (
            f"{child.phase_path}: {_fmt_seconds(child.total_duration)} total, "
            f"{child.n_instances} instance(s), mean {_fmt_seconds(child.mean_duration)}"
        )
        out.append(
            f'<g data-phase="{_esc(child.phase_path)}">'
            f'<rect x="{cursor:.1f}" y="{y}" width="{w:.1f}" height="{_ROW_HEIGHT}" '
            f'rx="2" fill="{color}"><title>{_esc(tip)}</title></rect>'
        )
        if w >= 48:
            out.append(
                f'<text x="{cursor + 4:.1f}" y="{y + _ROW_HEIGHT - 4}" '
                f'fill="#ffffff">{_esc(name)}</text>'
            )
        out.append("</g>")
        deepest = max(
            deepest, _flame_rects(child, cursor, w, depth + 1, out)
        )
        cursor += w
    return deepest


def _section_phases(profile: PerformanceProfile) -> str:
    root = summarize(profile)
    rects: list[str] = []
    deepest = _flame_rects(root, 0.0, float(_PLOT_WIDTH), 0, rects)
    height = (deepest + 1) * (_ROW_HEIGHT + 2)
    svg = (
        f'<svg viewBox="0 0 {_PLOT_WIDTH} {height}" width="{_PLOT_WIDTH}" '
        f'height="{height}" role="img" aria-label="phase hierarchy flame view">'
        + "".join(rects)
        + "</svg>"
    )
    rows = [
        [
            node.phase_path,
            node.n_instances,
            _fmt_seconds(node.total_duration),
            _fmt_seconds(node.mean_duration),
            _fmt_seconds(node.total_blocked),
        ]
        for _, node in root.walk()
        if node.phase_path != "/"
    ]
    return (
        '<section id="phases"><h2>Phase hierarchy</h2>'
        '<p class="meta">Width is total duration; rows are hierarchy depth. '
        "Hover a block for details.</p>"
        + svg
        + _table(["phase type", "instances", "total", "mean", "blocked"], rows)
        + "</section>"
    )


def _machine_of(resource: str) -> str:
    return resource.split("@", 1)[1] if "@" in resource else "cluster"


def _bottleneck_mask(profile: PerformanceProfile, resource: str) -> np.ndarray:
    mask = np.zeros(profile.grid.n_slices, dtype=bool)
    for b in profile.bottlenecks.for_resource(resource):
        if b.slices is not None:
            mask |= b.slices.astype(bool)
    return mask


def _section_resources(profile: PerformanceProfile) -> str:
    by_machine: dict[str, list[str]] = {}
    for name in sorted(profile.upsampled.resources()):
        by_machine.setdefault(_machine_of(name), []).append(name)
    if not by_machine:
        return (
            '<section id="resources"><h2>Resource timelines</h2>'
            '<p class="empty">no monitored resources</p></section>'
        )
    parts = ['<section id="resources"><h2>Resource timelines</h2>']
    parts.append(
        '<p class="meta">One heatmap per machine, one row per resource '
        "(pale → dark blue is utilization 0 → 1, red is over capacity); the "
        "thin red ribbon under a row marks timeslices where that resource "
        "bottlenecks a phase (saturation or exact-cap).</p>"
    )
    columns = min(profile.grid.n_slices, _MAX_COLUMNS)
    cell_w = _PLOT_WIDTH / max(columns, 1)
    for machine, resources in sorted(by_machine.items()):
        row_pitch = _ROW_HEIGHT + _RIBBON_HEIGHT + 4
        height = len(resources) * row_pitch
        svg = [
            f'<svg viewBox="0 0 {_LABEL_WIDTH + _PLOT_WIDTH} {height}" '
            f'width="{_LABEL_WIDTH + _PLOT_WIDTH}" height="{height}" role="img" '
            f'aria-label="resource heatmap for {_esc(machine)}">'
        ]
        for r, name in enumerate(resources):
            ur = profile.upsampled[name]
            util = _downsample_mean(ur.utilization, columns)
            ribbon = _downsample_any(_bottleneck_mask(profile, name), columns)
            y = r * row_pitch
            svg.append(
                f'<text x="0" y="{y + _ROW_HEIGHT - 4}" fill="#45515e">'
                f"{_esc(name)}</text>"
            )
            for k, u in enumerate(util):
                x = _LABEL_WIDTH + k * cell_w
                t = profile.grid.t0 + (k + 0.5) / max(columns, 1) * (
                    profile.grid.t_end - profile.grid.t0
                )
                svg.append(
                    f'<rect x="{x:.1f}" y="{y}" width="{cell_w + 0.15:.2f}" '
                    f'height="{_ROW_HEIGHT}" fill="{_utilization_color(float(u))}">'
                    f"<title>{_esc(name)} @ {t:.2f}s: {float(u):.0%}</title></rect>"
                )
            for k, hot in enumerate(ribbon):
                if not hot:
                    continue
                x = _LABEL_WIDTH + k * cell_w
                svg.append(
                    f'<rect x="{x:.1f}" y="{y + _ROW_HEIGHT + 1}" '
                    f'width="{cell_w + 0.15:.2f}" height="{_RIBBON_HEIGHT}" '
                    f'fill="#c0392b" class="ribbon"/>'
                )
        svg.append("</svg>")
        parts.append(f"<h3>{_esc(machine)}</h3>" + "".join(svg))
    parts.append("</section>")
    return "".join(parts)


def _section_bottlenecks(profile: PerformanceProfile) -> str:
    rows: list[list[Any]] = []
    for kind in BottleneckKind:
        per_resource: dict[str, float] = {}
        for b in profile.bottlenecks.for_kind(kind):
            per_resource[b.resource] = per_resource.get(b.resource, 0.0) + b.duration
        for res, dur in sorted(per_resource.items(), key=lambda kv: -kv[1]):
            rows.append([res, kind.value, _fmt_seconds(dur)])
    body = (
        _table(["resource", "kind", "bottlenecked time"], rows)
        if rows
        else '<p class="empty">none detected</p>'
    )
    return f'<section id="bottlenecks"><h2>Resource bottlenecks</h2>{body}</section>'


def _section_issues(profile: PerformanceProfile, *, top: int = 15) -> str:
    issues = profile.issues.top(top)
    if not issues:
        body = '<p class="empty">none above threshold</p>'
    else:
        rows = [
            [
                i.kind,
                i.subject,
                len(i.affected_instances),
                f"-{_fmt_seconds(i.makespan_reduction)}",
                f"{i.improvement:.1%}",
            ]
            for i in issues
        ]
        body = _table(
            ["kind", "subject", "instances", "optimistic reduction", "improvement"],
            rows,
            numeric={2, 3, 4},
        )
    return (
        '<section id="issues"><h2>Performance issues (optimistic impact)</h2>'
        + body
        + "</section>"
    )


def _section_outliers(profile: PerformanceProfile) -> str:
    rep = profile.outliers
    affected = sorted(rep.affected_groups(), key=lambda g: g.slowdown, reverse=True)
    head = (
        f'<p class="meta">{len(rep.nontrivial_groups())} non-trivial concurrent '
        f"groups, {len(affected)} affected ({rep.affected_fraction:.0%})</p>"
    )
    if not affected:
        body = '<p class="empty">no straggler groups</p>'
    else:
        rows = [
            [
                g.phase_path,
                g.n_phases,
                f"{g.slowdown:.2f}x",
                f"{g.outliers[0].factor:.2f}x" if g.outliers else "-",
            ]
            for g in affected[:15]
        ]
        body = _table(
            ["concurrent group", "phases", "step slowdown", "worst vs. peer median"],
            rows,
        )
    return f'<section id="outliers"><h2>Outlier phases (stragglers)</h2>{head}{body}</section>'


def _delta_cell(value: float) -> str:
    cls = "good" if value < 0 else "bad" if value > 0 else ""
    return f'<span class="{cls}">{value:+.3f}s</span>'


def _section_diff(diff: ProfileDiff) -> str:
    d = diff_to_dict(diff)
    speedup = d["makespan"]["speedup"]
    head = (
        f"<p>makespan {_fmt_seconds(diff.makespan_before)} → "
        f"{_fmt_seconds(diff.makespan_after)}"
        + (f" (<b>{speedup:.2f}x</b>)" if speedup is not None else "")
        + "</p>"
    )
    parts = ['<section id="diff"><h2>Before / after comparison</h2>', head]
    for label, phases in (
        ("Improved phases", diff.improved_phases()[:10]),
        ("Regressed phases", diff.regressed_phases()[:10]),
    ):
        if not phases:
            continue
        rows = [
            [
                p.phase_path,
                _fmt_seconds(p.before_total),
                _fmt_seconds(p.after_total),
                _delta_cell(p.delta),
            ]
            for p in phases
        ]
        parts.append(f"<h3>{label}</h3>")
        parts.append(_table(["phase type", "before", "after", "delta"], rows))
    resources = d["bottleneck_time_by_resource"]
    if resources:
        rows = [
            [
                res,
                _fmt_seconds(v["before"]),
                _fmt_seconds(v["after"]),
                _delta_cell(v["after"] - v["before"]),
            ]
            for res, v in resources.items()
        ]
        parts.append("<h3>Bottleneck time by resource</h3>")
        parts.append(_table(["resource", "before", "after", "delta"], rows))
    parts.append(
        f'<p class="meta">outlier-affected steps {diff.outlier_fraction_before:.0%} → '
        f"{diff.outlier_fraction_after:.0%}; worst step slowdown "
        f"{diff.worst_slowdown_before:.2f}x → {diff.worst_slowdown_after:.2f}x</p>"
    )
    parts.append("</section>")
    return "".join(parts)


def _section_pipeline(
    stages: Mapping[str, Any], counters: Mapping[str, float]
) -> str:
    parts = ['<section id="pipeline"><h2>Pipeline self-observation</h2>']
    if stages:
        rows = [
            [
                s.name,
                s.count,
                f"{s.total_us / 1e3:.2f}",
                f"{s.mean_us / 1e3:.3f}",
            ]
            for s in sorted(stages.values(), key=lambda s: -s.total_us)
        ]
        parts.append(
            _table(["stage", "calls", "total ms", "mean ms"], rows)
        )
    if counters:
        parts.append("<h3>Counters</h3>")
        parts.append(
            _table(
                ["counter", "value"],
                [[name, f"{value:g}"] for name, value in sorted(counters.items())],
            )
        )
    if not stages and not counters:
        parts.append('<p class="empty">trace holds no events</p>')
    parts.append("</section>")
    return "".join(parts)


def _section_bench(bench: Mapping[str, Any]) -> str:
    parts = [
        '<section id="bench"><h2>Pipeline benchmark</h2>',
        f'<p class="meta">schema {_esc(bench.get("schema"))} · preset '
        f'{_esc(bench.get("preset"))} · {_esc(bench.get("repeats"))} repeat(s)'
        + (
            f' · tracing overhead {bench["tracing_overhead"]:+.1%}'
            if isinstance(bench.get("tracing_overhead"), (int, float))
            else ""
        )
        + "</p>",
    ]
    rows = []
    for system, entry in bench.get("systems", {}).items():
        total = entry.get("total_s", {}).get("mean", 0.0)
        slowest = max(
            entry.get("stages", {}).items(),
            key=lambda kv: kv[1].get("mean_s", 0.0),
            default=(None, None),
        )[0]
        rows.append([system, f"{total * 1e3:.1f}", slowest or "-"])
    parts.append(_table(["system", "total ms (mean)", "slowest stage"], rows))
    parts.append("</section>")
    return "".join(parts)


# ---------------------------------------------------------------------- #
# Entry points
# ---------------------------------------------------------------------- #


def render_html_report(
    profile: PerformanceProfile,
    *,
    title: str = "Grade10 run report",
    diff: ProfileDiff | None = None,
    trace_events: list[dict[str, Any]] | None = None,
    bench: Mapping[str, Any] | None = None,
) -> str:
    """Render one characterized run as a self-contained HTML document.

    ``diff`` adds the before/after section, ``trace_events`` (a list of
    Chrome-trace events from :func:`repro.obs.read_trace_events`) the
    pipeline self-observation section, and ``bench`` (a parsed
    ``BENCH_pipeline.json``) the benchmark section.
    """
    from .. import obs

    body = [
        _section_overview(profile, title),
        _section_phases(profile),
        _section_resources(profile),
        _section_bottlenecks(profile),
        _section_issues(profile),
        _section_outliers(profile),
    ]
    if diff is not None:
        body.append(_section_diff(diff))
    if trace_events is not None:
        body.append(
            _section_pipeline(
                obs.aggregate_stages(trace_events), obs.final_counters(trace_events)
            )
        )
    if bench is not None:
        body.append(_section_bench(bench))
    body.append("<footer>generated by repro.report (Grade10 reproduction)</footer>")
    return (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">'
        f"<title>{_esc(title)}</title>"
        f"<style>{_CSS}</style></head><body>" + "".join(body) + "</body></html>\n"
    )


def report_sections(document: str) -> list[str]:
    """The ``<section id>`` inventory of a rendered report, in order."""
    import re

    return re.findall(r'<section id="([a-z]+)">', document)


def write_html_report(
    profile: PerformanceProfile, path: str | Path, **kwargs: Any
) -> Path:
    """Render and atomically publish a report (kwargs as in render)."""
    return atomic_write_text(path, render_html_report(profile, **kwargs))


def embed_json(data: Any, element_id: str) -> str:
    """A machine-readable JSON island (``<script type="application/json">``).

    ``</`` is escaped so arbitrary strings cannot terminate the script
    element early.
    """
    payload = json.dumps(data, indent=None, sort_keys=True).replace("</", "<\\/")
    return f'<script type="application/json" id="{_esc(element_id)}">{payload}</script>'
