"""Open-loop load generator for the analysis service (``repro loadgen``).

Proves the write side of ``repro serve`` at traffic, in the style of the
``dbworkload`` harness: submit jobs at a **fixed arrival rate** for a
fixed duration, stream every submitted job's SSE events to completion,
and report per-op throughput plus p50/p90/p99 latency tables per period.

Open-loop means arrivals are scheduled on a clock (``t0 + k/rate``),
*never* gated on completions — a slow service faces the same incoming
rate as a fast one, which is what exposes queueing collapse.  A
closed-loop harness (N clients in a request-response cycle) would
politely slow down with the service and hide it.  If all
``max_in_flight`` client slots are busy at an arrival instant, the op is
counted as ``overload`` instead of being silently delayed.

Two operations are measured per job:

* ``submit`` — the ``POST /jobs`` round-trip (admission latency);
* ``e2e`` — submission to the job's terminal ``run.finished`` SSE frame,
  streamed over ``/events?run=<job id>`` with the gap-free id contract
  checked frame by frame (any id gap is counted, and a stream that ends
  without a terminal frame counts as ``incomplete``).

With ``live_fraction > 0`` a deterministic fraction of arrivals submits
the same spec with ``"live": true`` — the incremental-characterization
path that streams ``window.analyzed`` / ``bottleneck.detected`` frames
mid-run — and those jobs are measured as separate ``submit_live`` /
``e2e_live`` ops.  Because both variants land in the mirrored
``systems`` section, ``BENCH_serve.json`` captures the live-analysis
overhead envelope and ``bench --diff`` gates regressions in it.

Every request carries a fresh W3C ``traceparent`` header
(:func:`repro.obs.format_traceparent`), so the server opens its
``http.request`` span as a child of this client and
``GET /jobs/<id>/trace`` returns the whole causal chain — client submit,
admission, queue wait, execution, pipeline stages — as one Chrome trace.
Alongside the client-measured latencies, each reporting period scrapes
``/metrics`` once and reports the **server-measured** ``POST /jobs``
latency (from the ``http_request_duration_seconds`` histogram) side by
side, warning when client and server disagree by more than 10% — the
signal that queueing happens *outside* the service (client pool, kernel
accept queue) rather than inside it.

The result document (schema ``grade10-bench-serve/1``, seeded at
``BENCH_serve.json`` by ``make bench-serve``) mirrors its per-op summary
into a ``systems``/``stages`` section, so the existing noise-aware
:func:`repro.bench.compare_bench_docs` regression gate — and with it
``repro bench --diff`` and CI exit code 4 — applies to service latency
exactly as it does to pipeline stage timings.
"""

from __future__ import annotations

import http.client
import json
import math
import platform
import re
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Mapping
from urllib.parse import urlparse

from . import obs
from .bench import SERVE_BENCH_SCHEMA
from .jobs import parse_job_spec
from .obs_logging import get_logger
from .viz import format_table

__all__ = [
    "DEFAULT_PERIOD_S",
    "SKEW_WARN_THRESHOLD",
    "LoadgenError",
    "percentile",
    "render_load_summary",
    "render_period_table",
    "run_loadgen",
    "skew_warning",
    "summarize_latencies",
]

_LOG = get_logger("repro.loadgen")

#: Default reporting-period length (seconds).
DEFAULT_PERIOD_S = 5.0

#: The two always-measured operations.
_OPS = ("submit", "e2e")

#: Extra ops measured when ``live_fraction > 0`` (jobs submitted with
#: ``"live": true``, exercising the incremental-characterization path).
_LIVE_OPS = ("submit_live", "e2e_live")

#: Relative client-vs-server submit-latency disagreement that triggers a
#: warning line in the per-period output.
SKEW_WARN_THRESHOLD = 0.10


class LoadgenError(Exception):
    """The load run could not start or complete (service unreachable, …)."""


# ---------------------------------------------------------------------- #
# Latency statistics
# ---------------------------------------------------------------------- #


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1]).

    Raises ``ValueError`` on an empty list — a percentile of nothing is
    a bug at the call site, not a zero.
    """
    if not values:
        raise ValueError("percentile of an empty list")
    if not (0.0 <= q <= 1.0):
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def summarize_latencies(values: list[float]) -> dict[str, Any]:
    """Count/mean/p50/p90/p99/max summary of one op's latency samples."""
    if not values:
        return {"count": 0}
    return {
        "count": len(values),
        "mean_s": sum(values) / len(values),
        "p50_s": percentile(values, 0.50),
        "p90_s": percentile(values, 0.90),
        "p99_s": percentile(values, 0.99),
        "max_s": max(values),
    }


class _Recorder:
    """Thread-safe sample store with per-period drain semantics."""

    def __init__(self, ops: tuple[str, ...] = _OPS) -> None:
        self._lock = threading.Lock()
        self._ops = ops
        self._totals: dict[str, list[float]] = {op: [] for op in ops}
        self._period: dict[str, list[float]] = {op: [] for op in ops}
        self.sse_events = 0
        self.sse_gaps = 0
        self.streams = 0
        self.live_windows = 0
        self.live_bottlenecks = 0
        self.errors = {"rejected": 0, "http": 0, "overload": 0, "incomplete": 0}

    def add(self, op: str, latency_s: float) -> None:
        with self._lock:
            self._totals[op].append(latency_s)
            self._period[op].append(latency_s)

    def add_stream(
        self, events: int, gaps: int, complete: bool,
        windows: int = 0, bottlenecks: int = 0,
    ) -> None:
        with self._lock:
            self.streams += 1
            self.sse_events += events
            self.sse_gaps += gaps
            self.live_windows += windows
            self.live_bottlenecks += bottlenecks
            if not complete:
                self.errors["incomplete"] += 1

    def count_error(self, kind: str) -> None:
        with self._lock:
            self.errors[kind] += 1

    def drain_period(self) -> dict[str, list[float]]:
        with self._lock:
            drained = self._period
            self._period = {op: [] for op in self._ops}
            return drained

    def totals(self) -> dict[str, list[float]]:
        with self._lock:
            return {op: list(samples) for op, samples in self._totals.items()}


# ---------------------------------------------------------------------- #
# HTTP client plumbing
# ---------------------------------------------------------------------- #


def _traceparent() -> str:
    """A fresh client-side trace context for one request."""
    return obs.format_traceparent(obs.new_trace_id(), obs.new_span_id())


def _http_get(base_url: str, path: str, timeout: float = 10.0) -> str:
    request = urllib.request.Request(
        base_url + path, headers={"traceparent": _traceparent()}
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def _post_job(
    base_url: str, body: bytes, timeout: float, traceparent: str | None = None
) -> tuple[int, dict[str, Any]]:
    request = urllib.request.Request(
        base_url + "/jobs",
        data=body,
        headers={
            "Content-Type": "application/json",
            "traceparent": traceparent or _traceparent(),
        },
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        raw = exc.read().decode("utf-8", errors="replace")
        try:
            doc = json.loads(raw)
        except json.JSONDecodeError:
            doc = {"error": raw}
        return exc.code, doc


# Scrape-side parsing: the two sample shapes the server-latency column
# needs (``_sum``/``_count`` of the POST /jobs histogram series).
_METRIC_LINE = re.compile(r"^(\w+)\{(.*?)\} (\S+)(?: # .*)?$")


def _scrape_submit_stats(base_url: str, timeout: float = 10.0) -> tuple[int, float]:
    """Server-measured ``POST /jobs`` latency off one ``/metrics`` scrape.

    Returns cumulative ``(count, sum_seconds)`` of the
    ``http_request_duration_seconds`` histogram summed over every status
    code of the ``POST /jobs`` route — the deltas between two scrapes
    give the server-side mean for that interval.
    """
    text = _http_get(base_url, "/metrics", timeout=timeout)
    count, total = 0, 0.0
    for line in text.splitlines():
        if not line.startswith("grade10_http_request_duration_seconds_"):
            continue
        m = _METRIC_LINE.match(line)
        if m is None:
            continue
        name, labels, value = m.groups()
        if 'method="POST"' not in labels or 'route="/jobs"' not in labels:
            continue
        if name.endswith("_count"):
            count += int(float(value))
        elif name.endswith("_sum"):
            total += float(value)
    return count, total


def _stream_job_events(
    host: str, port: int, run_id: str, deadline: float
) -> tuple[int, int, bool, dict[str, int]]:
    """Stream ``/events?run=...`` until ``run.finished``.

    Returns ``(n_events, id_gaps, saw_terminal, live_counts)``.  Ids
    must be the status log's consecutive integers starting at 1; every
    skip counts as a gap (the zero-dropped-events acceptance check).
    ``live_counts`` tallies the incremental-analysis frame kinds
    (``windows`` = ``window.analyzed``, ``bottlenecks`` =
    ``bottleneck.detected``) so live jobs prove their mid-run stream.
    """
    conn = http.client.HTTPConnection(host, port, timeout=max(deadline - time.monotonic(), 1.0))
    events = gaps = 0
    expected = 1
    live = {"windows": 0, "bottlenecks": 0}
    try:
        conn.request(
            "GET",
            f"/events?run={run_id}&last_id=0",
            headers={"traceparent": _traceparent()},
        )
        resp = conn.getresponse()
        if resp.status != 200:
            return 0, 0, False, live
        current: dict[str, str] = {}
        while time.monotonic() < deadline:
            line = resp.fp.readline().decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue  # heartbeat
            if line:
                key, _, value = line.partition(": ")
                current[key] = value
                continue
            if not current:
                continue
            frame, current = current, {}
            events += 1
            try:
                frame_id = int(frame.get("id", -1))
            except ValueError:
                frame_id = -1
            if frame_id != expected:
                gaps += abs(frame_id - expected)
            expected = frame_id + 1
            kind = frame.get("event")
            if kind == "window.analyzed":
                live["windows"] += 1
            elif kind == "bottleneck.detected":
                live["bottlenecks"] += 1
            if kind == "run.finished":
                return events, gaps, True, live
        return events, gaps, False, live
    except OSError:
        return events, gaps, False, live
    finally:
        conn.close()


# ---------------------------------------------------------------------- #
# Reporting
# ---------------------------------------------------------------------- #


def _period_doc(
    elapsed_s: float, period_s: float, samples: Mapping[str, list[float]]
) -> dict[str, Any]:
    ops = {}
    for op, values in samples.items():
        summary = summarize_latencies(values)
        summary["ops_per_s"] = len(values) / period_s if period_s > 0 else 0.0
        ops[op] = summary
    return {"elapsed_s": elapsed_s, "ops": ops}


def _stat_row(op: str, summary: Mapping[str, Any], *, elapsed_s: float,
              ops_per_s: float) -> list[str]:
    if summary.get("count", 0) == 0:
        return [f"{elapsed_s:.0f}", op, "0", "-", "-", "-", "-", "-", "-"]
    return [
        f"{elapsed_s:.0f}",
        op,
        str(summary["count"]),
        f"{ops_per_s:.2f}",
        f"{summary['mean_s'] * 1e3:.1f}",
        f"{summary['p50_s'] * 1e3:.1f}",
        f"{summary['p90_s'] * 1e3:.1f}",
        f"{summary['p99_s'] * 1e3:.1f}",
        f"{summary['max_s'] * 1e3:.1f}",
    ]


_TABLE_HEADERS = [
    "elapsed", "op", "ops", "ops/s", "mean ms", "p50 ms", "p90 ms", "p99 ms",
    "max ms",
]


def _server_row(op: str, summary: Mapping[str, Any], *, elapsed_s: float) -> list[str]:
    """A server-measured row: count and mean only (histogram sum/count
    deltas carry no percentiles)."""
    if summary.get("count", 0) == 0:
        return [f"{elapsed_s:.0f}", op, "0", "-", "-", "-", "-", "-", "-"]
    return [
        f"{elapsed_s:.0f}",
        op,
        str(summary["count"]),
        "-",
        f"{summary['mean_s'] * 1e3:.1f}",
        "-", "-", "-", "-",
    ]


def render_period_table(period: Mapping[str, Any], period_s: float) -> str:
    """One reporting period as a dbworkload-style latency table.

    When the period carries a ``server`` section (the per-period
    ``/metrics`` scrape), the server-measured submit latency renders
    directly under the client-measured row for eyeball comparison.
    """
    rows = []
    for op, summary in period["ops"].items():
        rows.append(
            _stat_row(
                op, summary,
                elapsed_s=period["elapsed_s"],
                ops_per_s=summary.get("ops_per_s", 0.0),
            )
        )
        server = period.get("server", {}).get(op)
        if server is not None:
            rows.append(
                _server_row(f"{op} (server)", server, elapsed_s=period["elapsed_s"])
            )
    return format_table(_TABLE_HEADERS, rows)


def skew_warning(period: Mapping[str, Any]) -> str | None:
    """A warning line when client and server submit latency disagree.

    Returns ``None`` while the two agree within
    :data:`SKEW_WARN_THRESHOLD` (or either side is missing).  Large skew
    means latency accrues outside the service — client thread pool,
    kernel accept queue — and the client-measured numbers stop being a
    statement about the server.
    """
    client = period.get("ops", {}).get("submit", {})
    server = period.get("server", {}).get("submit", {})
    if client.get("count", 0) == 0 or server.get("count", 0) == 0:
        return None
    client_mean, server_mean = client["mean_s"], server["mean_s"]
    if server_mean <= 0.0:
        return None
    skew = abs(client_mean - server_mean) / server_mean
    if skew <= SKEW_WARN_THRESHOLD:
        return None
    return (
        f"warning: submit latency skew {skew:.0%} — client "
        f"{client_mean * 1e3:.1f} ms vs server {server_mean * 1e3:.1f} ms "
        f"(threshold {SKEW_WARN_THRESHOLD:.0%})"
    )


def render_load_summary(doc: Mapping[str, Any]) -> str:
    """Whole-run per-op summary table plus the health counters."""
    duration = float(doc.get("duration_actual_s") or doc.get("duration_s") or 0.0)
    rows = [
        _stat_row(
            op, summary,
            elapsed_s=duration,
            ops_per_s=summary.get("throughput_per_s", 0.0),
        )
        for op, summary in doc.get("ops", {}).items()
    ]
    table = format_table(
        _TABLE_HEADERS, rows,
        title=f"Load summary — rate {doc.get('rate')}/s over {duration:.1f}s",
    )
    sse = doc.get("sse", {})
    errors = doc.get("errors", {})
    tail = (
        f"sse: {sse.get('events', 0)} events over {sse.get('streams', 0)} streams, "
        f"{sse.get('gaps', 0)} gaps; errors: "
        + ", ".join(f"{k}={v}" for k, v in errors.items())
    )
    live = doc.get("live")
    if live:
        tail += (
            f"\nlive: fraction {live.get('fraction')}, "
            f"{live.get('windows', 0)} window.analyzed and "
            f"{live.get('bottlenecks', 0)} bottleneck.detected frames"
        )
    return table + "\n" + tail


def _systems_section(
    ops: Mapping[str, Mapping[str, Any]], duration_s: float
) -> dict[str, Any]:
    """Mirror the per-op summary into compare_bench_docs' shape.

    Each op becomes a "system": ``total_s.mean`` is its mean latency and
    the latency percentiles plus seconds-per-op (inverse throughput, so
    *growth* means a regression) become "stages".
    """
    systems: dict[str, Any] = {}
    for op, summary in ops.items():
        if summary.get("count", 0) == 0:
            continue

        def stage(value: float, calls: int = summary["count"]) -> dict[str, Any]:
            return {"mean_s": value, "min_s": value, "max_s": value, "calls": calls}

        throughput = summary.get("throughput_per_s", 0.0)
        stages = {
            "latency_p50": stage(summary["p50_s"]),
            "latency_p90": stage(summary["p90_s"]),
            "latency_p99": stage(summary["p99_s"]),
        }
        if throughput > 0:
            stages["seconds_per_op"] = stage(1.0 / throughput)
        systems[op] = {
            "total_s": {
                "mean": summary["mean_s"],
                "min": summary["p50_s"],
                "max": summary["max_s"],
            },
            "stages": stages,
        }
    return systems


# ---------------------------------------------------------------------- #
# The open-loop run
# ---------------------------------------------------------------------- #


def run_loadgen(
    url: str,
    *,
    rate: float = 2.0,
    duration_s: float = 30.0,
    spec: Mapping[str, Any] | None = None,
    period_s: float = DEFAULT_PERIOD_S,
    max_in_flight: int = 64,
    op_timeout_s: float = 120.0,
    echo: Callable[[str], None] | None = None,
    server_latency: bool = True,
    live_fraction: float = 0.0,
) -> dict[str, Any]:
    """Drive an open-loop load run against a live ``repro serve``.

    Submits ``rate × duration_s`` jobs at fixed arrival times, streams
    each admitted job's SSE events to its terminal frame, and returns the
    ``grade10-bench-serve/1`` document.  ``spec`` is the job body every
    submission posts (validated locally first, so a typo fails fast
    instead of producing a run of 400s); ``echo`` receives the per-period
    latency tables as they are produced (e.g. ``print``).

    With ``server_latency`` (the default) each reporting period also
    scrapes ``/metrics`` once and reports the server-measured
    ``POST /jobs`` latency next to the client-measured one, emitting a
    warning line through ``echo`` when the two disagree by more than
    :data:`SKEW_WARN_THRESHOLD`; the result document gains a ``server``
    section with the whole-run server-side mean and skew.

    ``live_fraction`` in (0, 1] marks that fraction of arrivals (spread
    deterministically across the schedule) as ``"live": true`` jobs;
    their latencies are recorded as the separate ``submit_live`` /
    ``e2e_live`` ops and the result document gains a ``live`` section
    counting the ``window.analyzed`` / ``bottleneck.detected`` frames
    observed mid-run.

    Raises :class:`LoadgenError` when the service is unreachable and
    :class:`repro.jobs.JobSpecError` on an invalid ``spec``.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if not (0.0 <= live_fraction <= 1.0):
        raise ValueError(f"live_fraction must be in [0, 1], got {live_fraction}")
    normalized = parse_job_spec(dict(spec) if spec is not None else {}).to_dict()
    body = json.dumps(normalized).encode("utf-8")
    body_live = json.dumps(
        parse_job_spec({**normalized, "live": True}).to_dict()
    ).encode("utf-8")

    parsed = urlparse(url)
    if parsed.scheme not in ("http", ""):
        raise LoadgenError(f"unsupported URL scheme {parsed.scheme!r}")
    host = parsed.hostname or "127.0.0.1"
    port = parsed.port or 80
    base_url = f"http://{host}:{port}"
    try:
        if _http_get(base_url, "/healthz") != "ok\n":
            raise LoadgenError(f"{base_url}/healthz did not answer 'ok'")
    except OSError as exc:
        raise LoadgenError(f"service unreachable at {base_url}: {exc}") from exc

    recorder = _Recorder(_OPS + _LIVE_OPS if live_fraction > 0.0 else _OPS)
    slots = threading.BoundedSemaphore(max_in_flight)
    threads: list[threading.Thread] = []
    periods: list[dict[str, Any]] = []
    stop_reporting = threading.Event()

    # Server-side latency baseline: the histogram is cumulative, so each
    # period's server mean is the delta between consecutive scrapes.
    scrape_state = {"count": 0, "sum": 0.0, "enabled": server_latency}
    if server_latency:
        try:
            count0, sum0 = _scrape_submit_stats(base_url)
            scrape_state.update(count=count0, sum=sum0)
        except (OSError, ValueError):
            scrape_state["enabled"] = False
    baseline = (scrape_state["count"], scrape_state["sum"])

    def _server_delta() -> dict[str, Any] | None:
        """One ``/metrics`` scrape → this interval's server submit stats."""
        if not scrape_state["enabled"]:
            return None
        try:
            count, total = _scrape_submit_stats(base_url)
        except (OSError, ValueError):
            return None
        d_count = count - scrape_state["count"]
        d_sum = total - scrape_state["sum"]
        scrape_state["count"], scrape_state["sum"] = count, total
        if d_count <= 0:
            return {"count": 0}
        return {"count": d_count, "mean_s": max(d_sum, 0.0) / d_count}

    t0 = time.monotonic()

    def one_op(is_live: bool = False) -> None:
        try:
            t_start = time.monotonic()
            code, doc = _post_job(
                base_url, body_live if is_live else body, timeout=op_timeout_s
            )
            submit_latency = time.monotonic() - t_start
            if code == 429:
                recorder.count_error("rejected")
                return
            if code != 202:
                recorder.count_error("http")
                _LOG.warning("unexpected submit response", code=code, body=str(doc)[:200])
                return
            recorder.add("submit_live" if is_live else "submit", submit_latency)
            events, gaps, terminal, live = _stream_job_events(
                host, port, doc["run_id"], deadline=t_start + op_timeout_s
            )
            recorder.add_stream(events, gaps, terminal, **live)
            if terminal:
                recorder.add(
                    "e2e_live" if is_live else "e2e", time.monotonic() - t_start
                )
        except OSError:
            recorder.count_error("http")
        finally:
            slots.release()

    def reporter() -> None:
        tick = 1
        while not stop_reporting.wait(max(t0 + tick * period_s - time.monotonic(), 0.0)):
            period = _period_doc(tick * period_s, period_s, recorder.drain_period())
            server = _server_delta()
            if server is not None:
                period["server"] = {"submit": server}
            periods.append(period)
            if echo is not None:
                echo(render_period_table(period, period_s))
                warning = skew_warning(period)
                if warning is not None:
                    echo(warning)
            tick += 1

    report_thread = threading.Thread(target=reporter, name="loadgen-report", daemon=True)
    report_thread.start()

    n_ops = max(1, int(round(rate * duration_s)))
    _LOG.info(
        f"open-loop run: {n_ops} arrivals at {rate:g}/s over {duration_s:g}s "
        f"against {base_url}"
    )
    for k in range(n_ops):
        target = t0 + k / rate
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        if not slots.acquire(blocking=False):
            # Open loop: a saturated client pool drops the op and says so,
            # it never silently shifts the arrival schedule.
            recorder.count_error("overload")
            continue
        # Deterministic spread: arrival k is live iff the running target
        # floor(k·f) ticks up — exactly ~f of the schedule, evenly spaced.
        is_live = live_fraction > 0.0 and (
            math.floor((k + 1) * live_fraction) > math.floor(k * live_fraction)
        )
        thread = threading.Thread(
            target=one_op, args=(is_live,), name=f"loadgen-op-{k}", daemon=True
        )
        thread.start()
        threads.append(thread)

    join_deadline = time.monotonic() + op_timeout_s + 5.0
    for thread in threads:
        thread.join(timeout=max(join_deadline - time.monotonic(), 0.1))
    stop_reporting.set()
    report_thread.join(timeout=5.0)
    duration_actual = time.monotonic() - t0
    final = recorder.drain_period()
    if any(final.values()):
        # The trailing partial period is rated over its real length, not a
        # full period_s — everything the reporter already drained belongs
        # to the len(periods) full periods before it.
        final_len = duration_actual - len(periods) * period_s
        if final_len <= 0.0:
            final_len = period_s
        period = _period_doc(duration_actual, final_len, final)
        server = _server_delta()
        if server is not None:
            period["server"] = {"submit": server}
        periods.append(period)
        if echo is not None:
            echo(render_period_table(period, period_s))
            warning = skew_warning(period)
            if warning is not None:
                echo(warning)

    totals = recorder.totals()
    ops_summary: dict[str, Any] = {}
    for op, values in totals.items():
        summary = summarize_latencies(values)
        summary["throughput_per_s"] = (
            len(values) / duration_actual if duration_actual > 0 else 0.0
        )
        ops_summary[op] = summary

    doc = {
        "schema": SERVE_BENCH_SCHEMA,
        "url": base_url,
        "rate": rate,
        "duration_s": duration_s,
        "duration_actual_s": duration_actual,
        "period_s": period_s,
        "max_in_flight": max_in_flight,
        "spec": normalized,
        "ops": ops_summary,
        "periods": periods,
        "sse": {
            "streams": recorder.streams,
            "events": recorder.sse_events,
            "gaps": recorder.sse_gaps,
        },
        "errors": dict(recorder.errors),
        "systems": _systems_section(ops_summary, duration_actual),
        **(
            {
                "live": {
                    "fraction": live_fraction,
                    "windows": recorder.live_windows,
                    "bottlenecks": recorder.live_bottlenecks,
                }
            }
            if live_fraction > 0.0
            else {}
        ),
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }

    if scrape_state["enabled"]:
        try:
            end_count, end_sum = _scrape_submit_stats(base_url)
        except (OSError, ValueError):
            end_count, end_sum = baseline
        n = end_count - baseline[0]
        if n > 0:
            server_submit: dict[str, Any] = {
                "count": n,
                "mean_s": max(end_sum - baseline[1], 0.0) / n,
            }
            client = ops_summary.get("submit", {})
            if client.get("count", 0) > 0 and server_submit["mean_s"] > 0.0:
                skew = (
                    abs(client["mean_s"] - server_submit["mean_s"])
                    / server_submit["mean_s"]
                )
                server_submit["skew_vs_client"] = skew
                if skew > SKEW_WARN_THRESHOLD:
                    _LOG.warning(
                        "client/server submit latency skew",
                        skew=f"{skew:.0%}",
                        client_mean_s=client["mean_s"],
                        server_mean_s=server_submit["mean_s"],
                    )
            doc["server"] = {"submit": server_submit}
    return doc
