"""Pipeline-wide invariant checking of finished profiles.

Grade10's output is only trustworthy if the attribution arithmetic and the
trace structure it rests on are internally consistent.  On pristine input
the pipeline guarantees this by construction; on *degraded* input (dropped
monitoring samples, truncated logs, clock skew — see :mod:`repro.faults`)
the numbers can silently drift.  :func:`check_profile` runs after analysis
and turns silent drift into typed :class:`InvariantViolation` records.

The invariant catalog:

``finite``
    No NaN/inf and no negative values anywhere in the attribution output
    (per-instance usage, unattributed residue, upsampled rates).
``capacity``
    Attributed usage per timeslice never exceeds the resource's measured
    capacity.
``conservation``
    Per resource and timeslice, attributed usage plus the unattributed
    residue equals the upsampled consumption — attribution redistributes
    consumption across rules, it never creates or destroys it.
``nesting``
    The phase instance tree is well-formed: every child's interval lies
    within its parent's interval, and every ``parent_id`` resolves.
``grid``
    The profile's timeslices are contiguous, non-overlapping, uniform, and
    cover the execution trace's full span.

Violations are aggregated per (invariant, subject) — a resource with a
thousand bad slices yields one record with a count, not a thousand records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .profile import PerformanceProfile

__all__ = ["INVARIANTS", "InvariantViolation", "InvariantReport", "check_profile"]

#: The invariants :func:`check_profile` evaluates, in report order.
INVARIANTS = ("finite", "capacity", "conservation", "nesting", "grid")


@dataclass(frozen=True)
class InvariantViolation:
    """One broken pipeline invariant, aggregated over its subject.

    ``invariant`` is one of :data:`INVARIANTS`; ``subject`` names the
    resource, instance, or ``"grid"`` the violation is anchored to;
    ``count`` is the number of offending slices/instances folded into this
    record; ``worst`` quantifies the largest excursion (units depend on the
    invariant — rate units for ``capacity``/``conservation``, seconds for
    ``nesting``).
    """

    invariant: str
    subject: str
    message: str
    count: int = 1
    worst: float = 0.0


@dataclass
class InvariantReport:
    """All invariant violations found in one profile."""

    violations: list[InvariantViolation] = field(default_factory=list)
    checked: tuple[str, ...] = INVARIANTS

    def __iter__(self):
        return iter(self.violations)

    def __len__(self) -> int:
        return len(self.violations)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_invariant(self, invariant: str) -> list[InvariantViolation]:
        """Violations of one invariant."""
        return [v for v in self.violations if v.invariant == invariant]

    def summary(self) -> dict[str, int]:
        """Total offending-item count per invariant."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.invariant] = out.get(v.invariant, 0) + v.count
        return out

    def render(self) -> str:
        """Human-readable report (the CLI prints this)."""
        if self.ok:
            return f"invariant check: OK ({len(self.checked)} invariants hold)"
        lines = [f"invariant check: {len(self.violations)} violation(s)"]
        for v in self.violations:
            lines.append(f"  [{v.invariant}] {v.subject}: {v.message}")
        return "\n".join(lines)


def check_profile(profile: "PerformanceProfile", *, rel_tol: float = 1e-6) -> InvariantReport:
    """Check every pipeline invariant on a finished profile.

    ``rel_tol`` scales every numeric comparison; the default admits float
    accumulation error across the vectorized pipeline while catching any
    genuine drift.
    """
    report = InvariantReport()
    _check_grid(profile, report, rel_tol)
    _check_nesting(profile, report, rel_tol)
    _check_attribution(profile, report, rel_tol)
    return report


# ---------------------------------------------------------------------- #
# Individual invariants
# ---------------------------------------------------------------------- #


def _check_grid(profile: "PerformanceProfile", report: InvariantReport, rel_tol: float) -> None:
    grid = profile.grid
    trace = profile.execution_trace
    if grid.slice_duration <= 0.0 or grid.n_slices < 1:
        report.violations.append(
            InvariantViolation(
                "grid", "grid",
                f"degenerate grid: slice_duration={grid.slice_duration}, "
                f"n_slices={grid.n_slices}",
            )
        )
        return
    widths = np.diff(grid.edges)
    if np.any(widths <= 0.0) or not np.allclose(widths, grid.slice_duration, rtol=rel_tol):
        report.violations.append(
            InvariantViolation(
                "grid", "grid",
                "timeslices are not contiguous uniform intervals",
                count=int(np.sum(~np.isclose(widths, grid.slice_duration, rtol=rel_tol))),
            )
        )
    if len(trace) == 0:
        return
    tol = rel_tol * max(1.0, abs(trace.t_start), abs(trace.t_end))
    if grid.t0 > trace.t_start + tol or grid.t_end < trace.t_end - tol:
        report.violations.append(
            InvariantViolation(
                "grid", "grid",
                f"grid [{grid.t0:.6f}, {grid.t_end:.6f}) does not cover trace span "
                f"[{trace.t_start:.6f}, {trace.t_end:.6f}]",
                worst=max(grid.t0 - trace.t_start, trace.t_end - grid.t_end),
            )
        )


def _check_nesting(profile: "PerformanceProfile", report: InvariantReport, rel_tol: float) -> None:
    trace = profile.execution_trace
    bad = 0
    worst = 0.0
    example = ""
    dangling = 0
    for inst in trace.instances():
        if inst.parent_id is None:
            continue
        if inst.parent_id not in trace:
            dangling += 1
            continue
        parent = trace[inst.parent_id]
        tol = rel_tol * max(1.0, abs(parent.t_start), abs(parent.t_end))
        if not parent.encloses(inst, tol=tol):
            bad += 1
            excursion = max(parent.t_start - inst.t_start, inst.t_end - parent.t_end)
            if excursion > worst:
                worst = excursion
                example = (
                    f"{inst.instance_id!r} [{inst.t_start:.6f}, {inst.t_end:.6f}] escapes "
                    f"parent {parent.instance_id!r} [{parent.t_start:.6f}, {parent.t_end:.6f}]"
                )
    if dangling:
        report.violations.append(
            InvariantViolation(
                "nesting", "trace",
                f"{dangling} instance(s) reference a parent_id absent from the trace",
                count=dangling,
            )
        )
    if bad:
        report.violations.append(
            InvariantViolation(
                "nesting", "trace",
                f"{bad} instance(s) extend outside their parent's interval; worst: {example}",
                count=bad,
                worst=worst,
            )
        )


def _check_attribution(profile: "PerformanceProfile", report: InvariantReport, rel_tol: float) -> None:
    for name in profile.attribution.resources():
        ra = profile.attribution[name]
        if name in profile.upsampled:
            rate = profile.upsampled[name].rate
        else:  # pragma: no cover - attribution is built from the upsampled set
            rate = np.zeros(profile.grid.n_slices)

        # finite: every array the profile exposes must be finite and >= 0.
        arrays = (ra.usage, ra.unattributed, rate)
        n_bad = sum(int(np.sum(~np.isfinite(a))) for a in arrays)
        neg_tol = rel_tol * max(1.0, float(ra.capacity))
        n_neg = sum(int(np.sum(a < -neg_tol)) for a in arrays if a.size)
        if n_bad or n_neg:
            report.violations.append(
                InvariantViolation(
                    "finite", name,
                    f"{n_bad} non-finite and {n_neg} negative attribution values",
                    count=n_bad + n_neg,
                )
            )
            # Comparisons below would be poisoned by NaNs; skip them.
            if n_bad:
                continue

        attributed = ra.usage.sum(axis=0) if ra.usage.size else np.zeros_like(ra.unattributed)
        cap_tol = rel_tol * max(1.0, float(ra.capacity))
        over = attributed - ra.capacity
        n_over = int(np.sum(over > cap_tol))
        if n_over:
            report.violations.append(
                InvariantViolation(
                    "capacity", name,
                    f"attributed usage exceeds capacity {ra.capacity:g} in "
                    f"{n_over} timeslice(s) (worst +{float(over.max()):.6g})",
                    count=n_over,
                    worst=float(over.max()),
                )
            )

        gap = np.abs(ra.total_per_slice() - rate)
        cons_tol = rel_tol * np.maximum(1.0, rate)
        n_gap = int(np.sum(gap > cons_tol))
        if n_gap:
            report.violations.append(
                InvariantViolation(
                    "conservation", name,
                    f"attributed + unattributed != upsampled consumption in "
                    f"{n_gap} timeslice(s) (worst gap {float(gap.max()):.6g})",
                    count=n_gap,
                    worst=float(gap.max()),
                )
            )
