"""The columnar profile data model and its object-graph converters.

A :class:`ColumnarProfile` is a string pool plus a fixed, versioned
inventory of dense numpy columns (:data:`COLUMN_SPECS`).  Variable-length
structure is flattened the way column stores flatten it: child lists become
``(owner_row, payload...)`` event tables grouped by owner, adjacency
becomes CSR index pairs, and per-slice series become 2-D ``(axis,
n_slices)`` matrices.  Strings appear exactly once in the pool; every
column cell that names something holds an ``int32`` pool index (``-1``
encodes "absent").

``from_profile``/``to_profile`` are lossless on pipeline-produced
profiles: traces, demand entries, and upsampled grids are stored verbatim
(float64 bits preserved), while attribution, bottlenecks, issues, and
outliers — deterministic functions of the stored stages — are recomputed
on ``to_profile`` from the embedded execution model and analysis
parameters rather than serialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from ..attribution import attribute
from ..bottlenecks import EXACT_CAP_THRESHOLD, SATURATION_THRESHOLD, find_bottlenecks
from ..demand import DemandEntry, DemandEstimate, ResourceDemand
from ..issues import DEFAULT_MIN_IMPROVEMENT, detect_issues
from ..model_io import execution_model_from_dict, execution_model_to_dict
from ..outliers import DEFAULT_MIN_PHASE_DURATION, DEFAULT_THRESHOLD, find_outliers
from ..phases import ExecutionModel
from ..profile import PerformanceProfile
from ..timeline import TimeGrid
from ..traces import ExecutionTrace, PhaseInstance, ResourceTrace
from ..upsample import UpsampledResource, UpsampledTrace

__all__ = ["COLUMN_SPECS", "ColumnarProfile"]

#: Pool index used for absent strings (machine/worker/thread, parents).
_NULL = -1

#: The full column inventory: ``name -> (dtype, ndim)``.  Order is the
#: on-disk layout order; 2-D columns always have ``n_slices`` as their
#: second dimension.
COLUMN_SPECS: dict[str, tuple[str, int]] = {
    # Phase-instance table, one row per instance in trace insertion order
    # (parents always precede children, so re-adding row-by-row is valid).
    "inst_id": ("<i4", 1),
    "inst_path": ("<i4", 1),
    "inst_t_start": ("<f8", 1),
    "inst_t_end": ("<f8", 1),
    "inst_parent": ("<i8", 1),  # parent row index, -1 for roots
    "inst_machine": ("<i4", 1),
    "inst_worker": ("<i4", 1),
    "inst_thread": ("<i4", 1),
    # Per-instance blocking events, flattened and grouped by instance row.
    "blk_inst": ("<i8", 1),
    "blk_resource": ("<i4", 1),
    "blk_t_start": ("<f8", 1),
    "blk_t_end": ("<f8", 1),
    # depends_on adjacency in CSR form; targets are pool ids (an id may
    # reference an instance outside the trace, so row indices cannot be used).
    "dep_indptr": ("<i8", 1),  # length n_instances + 1
    "dep_target": ("<i4", 1),
    # Resource-trace measurement table, grouped by resource, sorted by start.
    "meas_resource": ("<i4", 1),
    "meas_t_start": ("<f8", 1),
    "meas_t_end": ("<f8", 1),
    "meas_value": ("<f8", 1),
    # Resource-trace blocking events, flattened and grouped by resource.
    "rblk_resource": ("<i4", 1),
    "rblk_t_start": ("<f8", 1),
    "rblk_t_end": ("<f8", 1),
    # Demand: the resource axis plus per-slice totals.
    "dres_name": ("<i4", 1),
    "dres_capacity": ("<f8", 1),
    "demand_exact": ("<f8", 2),  # (n_dres, n_slices)
    "demand_variable": ("<f8", 2),  # (n_dres, n_slices)
    # Deduplicated attributable-activity matrix: demand entries for the
    # same instance share one activity row across every resource.
    "attr_inst": ("<i8", 1),  # instance row per activity row
    "attr_activity": ("<f8", 2),  # (n_attr, n_slices)
    # Demand entries, grouped by demand resource in entry order.
    "ent_res": ("<i8", 1),
    "ent_attr": ("<i8", 1),
    "ent_exact": ("|u1", 1),
    "ent_magnitude": ("<f8", 1),
    # Upsampled per-resource grids.
    "ures_name": ("<i4", 1),
    "ures_capacity": ("<f8", 1),
    "ups_rate": ("<f8", 2),
    "ups_coverage": ("<f8", 2),
    "ups_unexplained": ("<f8", 2),
}


class _StringPool:
    """Insertion-ordered string interning for column construction."""

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def add(self, s: str | None) -> int:
        if s is None:
            return _NULL
        i = self._index.get(s)
        if i is None:
            i = len(self.strings)
            self._index[s] = i
            self.strings.append(s)
        return i


def _col(values: Iterable, dtype: str) -> np.ndarray:
    return np.asarray(list(values), dtype=np.dtype(dtype)).reshape(-1)


def _stack2d(rows: list[np.ndarray], n_slices: int) -> np.ndarray:
    if not rows:
        return np.zeros((0, n_slices), dtype=np.float64)
    return np.stack([np.asarray(r, dtype=np.float64) for r in rows])


@dataclass
class ColumnarProfile:
    """A performance profile as dense column arrays.

    ``meta`` holds the grid scalars, the analysis parameters, and the
    serialized execution model; ``strings`` is the shared pool; ``columns``
    maps every :data:`COLUMN_SPECS` name to its array (in-memory, or
    read-only views into one shared file mapping when opened from disk
    with ``mmap=True`` — release it with :meth:`close` or by using the
    profile as a context manager).
    """

    meta: dict[str, Any]
    strings: list[str]
    columns: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        missing = COLUMN_SPECS.keys() - self.columns.keys()
        extra = self.columns.keys() - COLUMN_SPECS.keys()
        if missing or extra:
            raise ValueError(
                f"column inventory mismatch: missing {sorted(missing)}, "
                f"unexpected {sorted(extra)}"
            )
        n_slices = self.grid.n_slices
        for name, (dtype, ndim) in COLUMN_SPECS.items():
            arr = self.columns[name]
            if arr.ndim != ndim:
                raise ValueError(f"column {name!r}: expected ndim {ndim}, got {arr.ndim}")
            if arr.dtype != np.dtype(dtype):
                raise ValueError(f"column {name!r}: expected dtype {dtype}, got {arr.dtype}")
            if ndim == 2 and arr.shape[1] != n_slices:
                raise ValueError(
                    f"column {name!r}: expected {n_slices} slices, got {arr.shape[1]}"
                )
        if len(self.columns["dep_indptr"]) != len(self.columns["inst_id"]) + 1:
            raise ValueError("dep_indptr must have n_instances + 1 entries")

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> TimeGrid:
        g = self.meta["grid"]
        return TimeGrid(
            t0=float(g["t0"]),
            slice_duration=float(g["slice_duration"]),
            n_slices=int(g["n_slices"]),
        )

    @property
    def n_instances(self) -> int:
        return len(self.columns["inst_id"])

    @property
    def n_slices(self) -> int:
        return int(self.meta["grid"]["n_slices"])

    @property
    def nbytes(self) -> int:
        """Total array payload size (excludes pool and metadata)."""
        return int(sum(a.nbytes for a in self.columns.values()))

    def equals(self, other: "ColumnarProfile") -> bool:
        """Exact equality: same metadata, pool, and column bits."""
        return (
            self.meta == other.meta
            and self.strings == other.strings
            and all(
                np.array_equal(self.columns[n], other.columns[n], equal_nan=True)
                for n in COLUMN_SPECS
            )
        )

    # ------------------------------------------------------------------ #
    # Conversion from the object graph
    # ------------------------------------------------------------------ #
    @classmethod
    def from_profile(
        cls,
        profile: PerformanceProfile,
        *,
        execution_model: ExecutionModel | None = None,
        analysis_params: dict[str, Any] | None = None,
    ) -> "ColumnarProfile":
        """Flatten a :class:`PerformanceProfile` into columns.

        The execution model and analysis parameters default to the ones the
        profile carries (attached by :class:`~repro.core.profile.Grade10`);
        pass them explicitly for hand-built profiles.
        """
        model = execution_model if execution_model is not None else profile.execution_model
        params = dict(
            analysis_params if analysis_params is not None else profile.analysis_params or {}
        )
        grid = profile.grid
        pool = _StringPool()
        cols: dict[str, np.ndarray] = {}

        trace = profile.execution_trace
        insts = trace.instances()
        row_of = {inst.instance_id: r for r, inst in enumerate(insts)}
        cols["inst_id"] = _col((pool.add(i.instance_id) for i in insts), "<i4")
        cols["inst_path"] = _col((pool.add(i.phase_path) for i in insts), "<i4")
        cols["inst_t_start"] = _col((i.t_start for i in insts), "<f8")
        cols["inst_t_end"] = _col((i.t_end for i in insts), "<f8")
        cols["inst_parent"] = _col(
            (row_of[i.parent_id] if i.parent_id is not None else -1 for i in insts), "<i8"
        )
        cols["inst_machine"] = _col((pool.add(i.machine) for i in insts), "<i4")
        cols["inst_worker"] = _col((pool.add(i.worker) for i in insts), "<i4")
        cols["inst_thread"] = _col((pool.add(i.thread) for i in insts), "<i4")

        blk = [
            (r, pool.add(b.resource), b.t_start, b.t_end)
            for r, inst in enumerate(insts)
            for b in inst.blocking
        ]
        cols["blk_inst"] = _col((b[0] for b in blk), "<i8")
        cols["blk_resource"] = _col((b[1] for b in blk), "<i4")
        cols["blk_t_start"] = _col((b[2] for b in blk), "<f8")
        cols["blk_t_end"] = _col((b[3] for b in blk), "<f8")

        indptr = np.zeros(len(insts) + 1, dtype=np.int64)
        targets: list[int] = []
        for r, inst in enumerate(insts):
            targets.extend(pool.add(d) for d in inst.depends_on)
            indptr[r + 1] = len(targets)
        cols["dep_indptr"] = indptr
        cols["dep_target"] = _col(targets, "<i4")

        rtrace = profile.resource_trace
        meas = [
            (pool.add(name), m.t_start, m.t_end, m.value)
            for name in rtrace.measured_resources()
            for m in rtrace.measurements(name)
        ]
        cols["meas_resource"] = _col((m[0] for m in meas), "<i4")
        cols["meas_t_start"] = _col((m[1] for m in meas), "<f8")
        cols["meas_t_end"] = _col((m[2] for m in meas), "<f8")
        cols["meas_value"] = _col((m[3] for m in meas), "<f8")

        rblk = [
            (pool.add(name), b.t_start, b.t_end)
            for name in rtrace.blocking_resources()
            for b in rtrace.blocking_events(name)
        ]
        cols["rblk_resource"] = _col((b[0] for b in rblk), "<i4")
        cols["rblk_t_start"] = _col((b[1] for b in rblk), "<f8")
        cols["rblk_t_end"] = _col((b[2] for b in rblk), "<f8")

        dem = profile.demand
        dnames = dem.resources()
        cols["dres_name"] = _col((pool.add(n) for n in dnames), "<i4")
        cols["dres_capacity"] = _col((dem[n].capacity for n in dnames), "<f8")
        cols["demand_exact"] = _stack2d([dem[n].exact_total for n in dnames], grid.n_slices)
        cols["demand_variable"] = _stack2d(
            [dem[n].variable_total for n in dnames], grid.n_slices
        )

        attr_index: dict[str, int] = {}
        attr_inst: list[int] = []
        attr_rows: list[np.ndarray] = []
        ent: list[tuple[int, int, int, float]] = []
        for di, rname in enumerate(dnames):
            for e in dem[rname].entries:
                iid = e.instance.instance_id
                ai = attr_index.get(iid)
                if ai is None:
                    ai = len(attr_rows)
                    attr_index[iid] = ai
                    attr_inst.append(row_of[iid])
                    attr_rows.append(e.activity)
                ent.append((di, ai, 1 if e.is_exact else 0, e.magnitude))
        cols["attr_inst"] = _col(attr_inst, "<i8")
        cols["attr_activity"] = _stack2d(attr_rows, grid.n_slices)
        cols["ent_res"] = _col((e[0] for e in ent), "<i8")
        cols["ent_attr"] = _col((e[1] for e in ent), "<i8")
        cols["ent_exact"] = _col((e[2] for e in ent), "|u1")
        cols["ent_magnitude"] = _col((e[3] for e in ent), "<f8")

        ups = profile.upsampled
        unames = ups.resources()
        cols["ures_name"] = _col((pool.add(n) for n in unames), "<i4")
        cols["ures_capacity"] = _col((ups[n].capacity for n in unames), "<f8")
        cols["ups_rate"] = _stack2d([ups[n].rate for n in unames], grid.n_slices)
        cols["ups_coverage"] = _stack2d([ups[n].coverage for n in unames], grid.n_slices)
        cols["ups_unexplained"] = _stack2d(
            [ups[n].unexplained for n in unames], grid.n_slices
        )

        meta = {
            "grid": {
                "t0": grid.t0,
                "slice_duration": grid.slice_duration,
                "n_slices": grid.n_slices,
            },
            "params": params,
            "execution_model": execution_model_to_dict(model) if model is not None else None,
        }
        return cls(meta=meta, strings=pool.strings, columns=cols)

    # ------------------------------------------------------------------ #
    # Conversion back to the object graph
    # ------------------------------------------------------------------ #
    def to_profile(self) -> PerformanceProfile:
        """Rebuild the full :class:`PerformanceProfile`.

        Traces, demand, and upsampled grids are reconstructed bit-for-bit
        from the columns; attribution, bottlenecks, issues, and outliers
        are recomputed from those inputs with the stored analysis
        parameters, which reproduces the originals exactly because every
        downstream stage is a deterministic function of the stored ones.
        """
        grid = self.grid
        model_doc = self.meta.get("execution_model")
        if model_doc is None:
            raise ValueError(
                "columnar profile carries no execution model; issue/outlier "
                "reports cannot be rebuilt (pass execution_model= to from_profile)"
            )
        model = execution_model_from_dict(model_doc)
        params = dict(self.meta.get("params") or {})
        c = self.columns
        s = self.strings

        def sname(i: int) -> str | None:
            return None if i < 0 else s[i]

        trace = ExecutionTrace()
        n = self.n_instances
        ids = [s[int(i)] for i in c["inst_id"]]
        indptr = c["dep_indptr"]
        insts: list[PhaseInstance] = []
        for r in range(n):
            p = int(c["inst_parent"][r])
            deps = [s[int(t)] for t in c["dep_target"][int(indptr[r]) : int(indptr[r + 1])]]
            insts.append(
                trace.add(
                    PhaseInstance(
                        instance_id=ids[r],
                        phase_path=s[int(c["inst_path"][r])],
                        t_start=float(c["inst_t_start"][r]),
                        t_end=float(c["inst_t_end"][r]),
                        parent_id=ids[p] if p >= 0 else None,
                        machine=sname(int(c["inst_machine"][r])),
                        worker=sname(int(c["inst_worker"][r])),
                        thread=sname(int(c["inst_thread"][r])),
                        depends_on=deps,
                    )
                )
            )
        for k in range(len(c["blk_inst"])):
            insts[int(c["blk_inst"][k])].add_blocking(
                s[int(c["blk_resource"][k])],
                float(c["blk_t_start"][k]),
                float(c["blk_t_end"][k]),
            )

        rtrace = ResourceTrace()
        for k in range(len(c["meas_resource"])):
            rtrace.add_measurement(
                s[int(c["meas_resource"][k])],
                float(c["meas_t_start"][k]),
                float(c["meas_t_end"][k]),
                float(c["meas_value"][k]),
            )
        for k in range(len(c["rblk_resource"])):
            rtrace.add_blocking_event(
                s[int(c["rblk_resource"][k])],
                float(c["rblk_t_start"][k]),
                float(c["rblk_t_end"][k]),
            )

        dnames = [s[int(i)] for i in c["dres_name"]]
        per_resource = {
            rname: ResourceDemand(
                resource=rname,
                capacity=float(c["dres_capacity"][di]),
                exact_total=np.array(c["demand_exact"][di], dtype=np.float64),
                variable_total=np.array(c["demand_variable"][di], dtype=np.float64),
                entries=[],
            )
            for di, rname in enumerate(dnames)
        }
        # Rebuild the shared-activity structure: one materialized array per
        # attr row, shared by every entry that references it.
        attr_arrays = [
            np.array(c["attr_activity"][a], dtype=np.float64)
            for a in range(len(c["attr_inst"]))
        ]
        for k in range(len(c["ent_res"])):
            ai = int(c["ent_attr"][k])
            per_resource[dnames[int(c["ent_res"][k])]].entries.append(
                DemandEntry(
                    instance=insts[int(c["attr_inst"][ai])],
                    is_exact=bool(c["ent_exact"][k]),
                    magnitude=float(c["ent_magnitude"][k]),
                    activity=attr_arrays[ai],
                )
            )
        demand = DemandEstimate(grid=grid, per_resource=per_resource)

        ups_per_resource = {}
        for ui in range(len(c["ures_name"])):
            rname = s[int(c["ures_name"][ui])]
            ups_per_resource[rname] = UpsampledResource(
                resource=rname,
                capacity=float(c["ures_capacity"][ui]),
                rate=np.array(c["ups_rate"][ui], dtype=np.float64),
                coverage=np.array(c["ups_coverage"][ui], dtype=np.float64),
                unexplained=np.array(c["ups_unexplained"][ui], dtype=np.float64),
            )
        upsampled = UpsampledTrace(grid=grid, per_resource=ups_per_resource)

        attribution = attribute(upsampled, demand, trace)
        bottlenecks = find_bottlenecks(
            trace,
            upsampled,
            attribution,
            saturation_threshold=float(
                params.get("saturation_threshold", SATURATION_THRESHOLD)
            ),
            exact_cap_threshold=float(params.get("exact_cap_threshold", EXACT_CAP_THRESHOLD)),
        )
        issues = detect_issues(
            trace,
            model,
            bottlenecks,
            upsampled,
            attribution,
            min_improvement=float(params.get("min_improvement", DEFAULT_MIN_IMPROVEMENT)),
        )
        outliers = find_outliers(
            trace,
            model,
            threshold=float(params.get("outlier_threshold", DEFAULT_THRESHOLD)),
            min_phase_duration=float(
                params.get("min_phase_duration", DEFAULT_MIN_PHASE_DURATION)
            ),
        )
        return PerformanceProfile(
            grid=grid,
            execution_trace=trace,
            resource_trace=rtrace,
            demand=demand,
            upsampled=upsampled,
            attribution=attribution,
            bottlenecks=bottlenecks,
            issues=issues,
            outliers=outliers,
            execution_model=model,
            analysis_params=params or None,
        )

    # ------------------------------------------------------------------ #
    # Persistence (delegates to .storage; lazy import avoids a cycle)
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write the versioned memmap layout atomically; returns the path."""
        from .storage import save_columnar

        return save_columnar(self, path)

    @classmethod
    def open(cls, path: str | Path, *, mmap: bool = True) -> "ColumnarProfile":
        """Open a saved profile; columns are read-only memmaps by default."""
        from .storage import open_columnar

        return open_columnar(path, mmap=mmap)

    def close(self) -> None:
        """Release the file mapping (and its descriptor) of a memmapped open.

        The profile's columns become unusable afterwards.  No-op for
        in-memory profiles (``from_profile`` or ``open(mmap=False)``) and
        when called twice.  If column arrays are still referenced outside
        the profile, the descriptor is released when they are garbage
        collected instead.
        """
        mm = self.__dict__.pop("_mmap", None)
        if mm is None:
            return
        self.columns = {}  # drop our buffer views so the mapping can unmap
        try:
            mm.close()
        except BufferError:
            pass  # external views still alive; freed when they are collected

    def __enter__(self) -> "ColumnarProfile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
