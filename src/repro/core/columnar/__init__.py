"""Dense columnar profile core (ROADMAP item 2).

``repro.core.columnar`` re-expresses profiles and timelines as flat numpy
column arrays — phase-instance tables, per-resource sample grids, and
demand/usage matrices — instead of per-event Python object graphs:

* :class:`ColumnarProfile` (:mod:`.arrays`) is the interchange form: a
  string pool plus a fixed inventory of typed columns, losslessly
  convertible to and from :class:`~repro.core.profile.PerformanceProfile`
  via ``from_profile``/``to_profile``.
* :mod:`.storage` gives it a versioned memmap-backed on-disk layout
  (``ColumnarProfile.save``/``ColumnarProfile.open``) so million-slice
  grids stream through constant memory.
* :mod:`.pipeline` holds batched fast paths for the hottest pipeline
  stages — activity rasterization, demand estimation, and the
  water-filling upsampler — selected through
  ``Grade10(..., profile_backend="columnar")``.

The contract for the fast paths is *equivalence*: identical integer/id
outputs and float outputs within the tolerances documented in
``docs/columnar.md``, enforced by the differential suite in
``tests/core/test_columnar_equivalence.py``.
"""

from .arrays import COLUMN_SPECS, ColumnarProfile
from .pipeline import (
    attributable_activity,
    estimate_demand_columnar,
    find_bottlenecks_columnar,
    rasterize_rows,
    upsample_columnar,
)
from .storage import (
    COLUMNAR_FORMAT,
    COLUMNAR_MAGIC,
    ColumnarFormatError,
    open_columnar,
    save_columnar,
)

__all__ = [
    "COLUMN_SPECS",
    "COLUMNAR_FORMAT",
    "COLUMNAR_MAGIC",
    "ColumnarFormatError",
    "ColumnarProfile",
    "attributable_activity",
    "estimate_demand_columnar",
    "find_bottlenecks_columnar",
    "open_columnar",
    "rasterize_rows",
    "save_columnar",
    "upsample_columnar",
]
