"""Batched columnar fast paths for the hottest pipeline stages.

Selected through ``Grade10(..., profile_backend="columnar")``, these
replace the per-instance / per-window Python loops of
:mod:`repro.core.demand` and :mod:`repro.core.upsample` with dense 2-D
kernels:

* :func:`rasterize_rows` rasterizes *all* instances' active intervals onto
  an ``(n_instances, n_slices)`` matrix in one difference-array sweep;
* :func:`attributable_activity` derives the attributable set with one
  scatter-add for the parent/child subtraction;
* :func:`upsample_columnar` lays every measurement window of a resource
  into a padded ``(n_windows, max_width)`` matrix and runs the 3-step
  water-filling distribution (§III-D2) across all windows at once
  (:func:`_water_fill_batch`).

Equivalence contract: each kernel replicates the scalar path's operation
order element-for-element (sequential ``np.add.at`` scatters, masked sums
that only append exact ``+0.0`` terms), so on realistic window widths the
outputs are bit-identical; the differential suite additionally tolerates
the tiny reassociation drift wider-than-pairwise-block rows could
introduce (see ``docs/columnar.md``).
"""

from __future__ import annotations

import numpy as np

from ... import obs
from ..attribution import AttributionResult
from ..bottlenecks import (
    EXACT_CAP_THRESHOLD,
    SATURATION_THRESHOLD,
    Bottleneck,
    BottleneckKind,
    BottleneckReport,
)
from ..demand import DemandEntry, DemandEstimate, ResourceDemand
from ..resources import ResourceModel
from ..rules import ExactRule, NoneRule, RuleMatrix, VariableRule
from ..timeline import TimeGrid
from ..traces import ExecutionTrace, PhaseInstance, ResourceTrace
from ..upsample import UpsampledResource, UpsampledTrace

__all__ = [
    "attributable_activity",
    "estimate_demand_columnar",
    "find_bottlenecks_columnar",
    "rasterize_rows",
    "upsample_columnar",
]

_EPS = 1e-12


def rasterize_rows(
    grid: TimeGrid,
    rows: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    n_rows: int,
) -> np.ndarray:
    """Fractional interval rasterization onto an ``(n_rows, n_slices)`` matrix.

    The 2-D analogue of :func:`repro.core.timeline.rasterize_intervals`
    with unit weights: interval ``k`` accumulates its per-slice overlap
    fraction into row ``rows[k]``.  Operation order matches the scalar
    path per row (same/head/tail scatter-adds, then a per-row cumsum of
    the body difference array), so each row is bit-identical to
    rasterizing that row's intervals alone.
    """
    n = grid.n_slices
    out = np.zeros((n_rows, n), dtype=np.float64)
    if len(starts) == 0:
        return out
    rows = np.asarray(rows, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)

    a = np.clip((starts - grid.t0) / grid.slice_duration, 0.0, n)
    b = np.clip((ends - grid.t0) / grid.slice_duration, 0.0, n)
    a, b = np.minimum(a, b), np.maximum(a, b)
    ia = np.floor(a).astype(np.int64)
    ib = np.floor(b).astype(np.int64)

    flat = out.ravel()
    same = ia == ib
    np.add.at(flat, rows[same] * n + np.clip(ia[same], 0, n - 1), b[same] - a[same])

    multi = ~same
    if np.any(multi):
        r_m, ia_m, ib_m = rows[multi], ia[multi], ib[multi]
        a_m, b_m = a[multi], b[multi]
        np.add.at(flat, r_m * n + ia_m, ia_m + 1 - a_m)
        tail = ib_m < n
        np.add.at(flat, r_m[tail] * n + ib_m[tail], b_m[tail] - ib_m[tail])
        body = ib_m > ia_m + 1
        if np.any(body):
            diff = np.zeros((n_rows, n + 1), dtype=np.float64)
            dflat = diff.ravel()
            np.add.at(dflat, r_m[body] * (n + 1) + ia_m[body] + 1, 1.0)
            np.add.at(dflat, r_m[body] * (n + 1) + np.minimum(ib_m[body], n), -1.0)
            out += np.cumsum(diff, axis=1)[:, :-1]
    return out


def attributable_activity(
    trace: ExecutionTrace, grid: TimeGrid
) -> list[tuple[PhaseInstance, np.ndarray]]:
    """Columnar form of :meth:`ExecutionTrace.attributable_instances`.

    One batched rasterization for every instance's active intervals, one
    ``np.add.at`` scatter for the per-parent child-activity sums (applied
    in insertion order, exactly like the scalar per-kid loop), and the
    same ``clip(raw - children, 0, 1)`` only where children exist.
    """
    insts = trace.instances()
    n = len(insts)
    if n == 0:
        return []
    row_of = {inst.instance_id: r for r, inst in enumerate(insts)}
    rows: list[int] = []
    starts: list[float] = []
    ends: list[float] = []
    for r, inst in enumerate(insts):
        for s, e in inst.active_intervals():
            rows.append(r)
            starts.append(s)
            ends.append(e)
    raw = rasterize_rows(
        grid,
        np.asarray(rows, dtype=np.int64),
        np.asarray(starts, dtype=np.float64),
        np.asarray(ends, dtype=np.float64),
        n,
    )
    parent = np.fromiter(
        (row_of[i.parent_id] if i.parent_id is not None else -1 for i in insts),
        dtype=np.int64,
        count=n,
    )
    child_sum = np.zeros_like(raw)
    has_child = np.zeros(n, dtype=bool)
    is_kid = parent >= 0
    if np.any(is_kid):
        np.add.at(child_sum, parent[is_kid], raw[is_kid])
        has_child[parent[is_kid]] = True
    attr = np.where(has_child[:, None], np.clip(raw - child_sum, 0.0, 1.0), raw)
    return [(insts[r], attr[r]) for r in range(n) if np.any(attr[r] > 0.0)]


def estimate_demand_columnar(
    trace: ExecutionTrace,
    resources: ResourceModel,
    rules: RuleMatrix,
    grid: TimeGrid,
) -> DemandEstimate:
    """Demand estimation (§III-D1) over the batched activity matrix.

    Rule resolution and the per-resource accumulation order are identical
    to :func:`repro.core.demand.estimate_demand`; only the activity
    rasterization is batched, so the resulting totals and entries carry
    the same float bits.
    """
    attributable = attributable_activity(trace, grid)
    per_resource: dict[str, ResourceDemand] = {}
    for name, res in resources.consumable.items():
        exact_total = np.zeros(grid.n_slices)
        variable_total = np.zeros(grid.n_slices)
        entries: list[DemandEntry] = []
        for inst, activity in attributable:
            rule = rules.rule_for(inst, name)
            if isinstance(rule, NoneRule):
                continue
            if isinstance(rule, ExactRule):
                magnitude = rule.proportion * res.capacity
                entry = DemandEntry(inst, True, magnitude, activity)
                exact_total += entry.demand()
            elif isinstance(rule, VariableRule):
                entry = DemandEntry(inst, False, rule.weight, activity)
                variable_total += entry.demand()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown rule type {type(rule).__name__}")
            entries.append(entry)
        np.minimum(exact_total, res.capacity, out=exact_total)
        per_resource[name] = ResourceDemand(
            resource=name,
            capacity=res.capacity,
            exact_total=exact_total,
            variable_total=variable_total,
            entries=entries,
        )
    return DemandEstimate(grid=grid, per_resource=per_resource)


def find_bottlenecks_columnar(
    trace: ExecutionTrace,
    upsampled: UpsampledTrace,
    attribution: AttributionResult,
    *,
    saturation_threshold: float = SATURATION_THRESHOLD,
    exact_cap_threshold: float = EXACT_CAP_THRESHOLD,
    min_duration: float = 0.0,
) -> BottleneckReport:
    """Array form of :func:`repro.core.bottlenecks.find_bottlenecks` (§III-E).

    The per-row Python loop of the scalar detector becomes whole-matrix
    masks and one integer reduction per resource; because the per-slice
    masks and counts are exact (booleans and integers), the emitted
    report — kinds, order, durations, masks — is bit-identical to the
    scalar detector's.
    """
    with obs.span("bottlenecks"):
        grid = upsampled.grid
        report = BottleneckReport(grid=grid)
        sd = grid.slice_duration

        # Blocking bottlenecks read straight off the trace; the scalar loop
        # is already minimal (no per-slice work), so it is kept verbatim.
        for inst in trace.instances():
            per_resource: dict[str, float] = {}
            for ev in inst.blocking:
                per_resource[ev.resource] = per_resource.get(ev.resource, 0.0) + ev.duration
            for res, dur in per_resource.items():
                if dur >= max(min_duration, _EPS):
                    report.bottlenecks.append(
                        Bottleneck(
                            BottleneckKind.BLOCKING, inst.instance_id, inst.phase_path, res, dur
                        )
                    )

        sat_floor = max(min_duration, sd / 2)
        for resource in upsampled.resources():
            if resource not in attribution:
                continue
            ra = attribution[resource]
            if not ra.instance_ids:
                continue
            saturated = upsampled[resource].utilization >= saturation_threshold
            active = ra.demand > _EPS  # (n_instances, n_slices)
            sat = active & saturated[None, :]
            sat_times = sat.sum(axis=1).astype(np.float64) * sd
            capped = (
                active
                & (ra.usage >= exact_cap_threshold * ra.demand)
                & ~saturated[None, :]
            )
            cap_times = capped.sum(axis=1).astype(np.float64) * sd
            for row, iid in enumerate(ra.instance_ids):
                phase_path = trace[iid].phase_path
                if sat_times[row] >= sat_floor:
                    report.bottlenecks.append(
                        Bottleneck(
                            BottleneckKind.SATURATION,
                            iid,
                            phase_path,
                            resource,
                            float(sat_times[row]),
                            sat[row],
                        )
                    )
                if ra.is_exact[row] and cap_times[row] >= sat_floor:
                    report.bottlenecks.append(
                        Bottleneck(
                            BottleneckKind.EXACT_CAP,
                            iid,
                            phase_path,
                            resource,
                            float(cap_times[row]),
                            capped[row],
                        )
                    )
        return report


def _water_fill_batch(
    amount: np.ndarray, weights: np.ndarray, headroom: np.ndarray
) -> np.ndarray:
    """Row-wise water-filling: every row replays ``upsample._water_fill``.

    ``amount`` is ``(n_windows,)``; ``weights``/``headroom`` are
    ``(n_windows, width)``.  Rows iterate together but each follows the
    scalar algorithm's exact branch structure via masks (a row that would
    have exited the scalar loop goes inert), so allocations match the
    per-window calls element-for-element.
    """
    alloc = np.zeros_like(weights)
    if weights.shape[0] == 0 or weights.shape[1] == 0:
        return alloc
    remaining = np.asarray(amount, dtype=np.float64).copy()
    active = (weights > _EPS) & (headroom > _EPS)
    live = (remaining > _EPS) & active.any(axis=1)
    # Each iteration caps at least one cell per live row, so the loop is
    # bounded by the row width; the guard is purely defensive.
    for _ in range(weights.shape[1] + 1):
        if not np.any(live):
            break
        w_sum = np.where(active, weights, 0.0).sum(axis=1)
        live &= w_sum > _EPS
        if not np.any(live):
            break
        act = live[:, None] & active
        safe = np.where(w_sum > _EPS, w_sum, 1.0)
        share = np.where(act, remaining[:, None] * weights / safe[:, None], 0.0)
        room = headroom - alloc
        over = share > room
        take = np.where(act, np.where(over, room, share), 0.0)
        alloc += take
        remaining = np.where(live, remaining - take.sum(axis=1), remaining)
        newly_capped = over & act
        live &= newly_capped.any(axis=1)
        active &= ~newly_capped
        live &= remaining > _EPS
    return alloc


def upsample_columnar(
    resource_trace: ResourceTrace,
    demand: DemandEstimate,
    grid: TimeGrid,
) -> UpsampledTrace:
    """Upsampling (§III-D2) with all of a resource's windows batched."""
    with obs.span("upsample", n_slices=grid.n_slices):
        return _upsample_columnar(resource_trace, demand, grid)


def _upsample_columnar(
    resource_trace: ResourceTrace,
    demand: DemandEstimate,
    grid: TimeGrid,
) -> UpsampledTrace:
    n = grid.n_slices
    sd = grid.slice_duration
    per_resource: dict[str, UpsampledResource] = {}
    for name in resource_trace.measured_resources():
        if name not in demand:
            # Monitored but not modelled: no capacity or demand to guide
            # upsampling (same skip as the scalar path).
            continue
        rdemand = demand[name]
        amount = np.zeros(n)
        unexplained = np.zeros(n)
        coverage = np.zeros(n)
        ms = resource_trace.measurements(name)
        if ms:
            starts = np.array([m.t_start for m in ms], dtype=np.float64)
            ends = np.array([m.t_end for m in ms], dtype=np.float64)
            values = np.array([m.value for m in ms], dtype=np.float64)
            lo, hi = grid.slice_range_batch(starts, ends)
            width = hi - lo
            max_w = int(width.max())
            if max_w > 0:
                offs = np.arange(max_w)
                idx = lo[:, None] + offs[None, :]
                valid = offs[None, :] < width[:, None]
                idxc = np.clip(idx, 0, n - 1)
                # Slice edges computed exactly as interval_slice_overlap
                # does (t0 + k*sd for integer k), so fractions carry the
                # same bits as the scalar path.
                edge_lo = grid.t0 + idx * sd
                edge_hi = grid.t0 + (idx + 1) * sd
                frac = np.clip(
                    (np.minimum(edge_hi, ends[:, None]) - np.maximum(edge_lo, starts[:, None]))
                    / sd,
                    0.0,
                    1.0,
                )
                frac = np.where(valid, frac, 0.0)
                # The window's full consumption is distributed over its
                # in-grid slices (total preserved, not in-grid duration).
                total = values * (ends - starts) / sd

                exact_total = np.asarray(rdemand.exact_total)
                variable_total = np.asarray(rdemand.variable_total)
                cap = rdemand.capacity * frac
                exact = np.minimum(exact_total[idxc] * frac, cap)
                var_w = variable_total[idxc] * frac

                # Step 1: satisfy exact demand proportionally.
                remaining = total.copy()
                exact_sum = exact.sum(axis=1)
                has_exact = exact_sum > _EPS
                full = has_exact & (remaining >= exact_sum)
                partial = has_exact & ~full
                scale = np.zeros(len(ms))
                scale[full] = 1.0
                np.divide(remaining, exact_sum, out=scale, where=partial)
                alloc = exact * scale[:, None]
                remaining = np.where(full, remaining - exact_sum, remaining)
                remaining = np.where(partial, 0.0, remaining)

                # Step 2: water-fill the remainder over variable demand.
                filled = _water_fill_batch(remaining, var_w, cap - alloc)
                alloc = alloc + filled
                remaining = remaining - filled.sum(axis=1)

                # Step 3: unexplained residue over coverage, then uniform
                # overflow when even capacity cannot absorb it.
                filled = _water_fill_batch(remaining, frac, cap - alloc)
                alloc = alloc + filled
                unexp = filled.copy()
                remaining = remaining - filled.sum(axis=1)
                overflow = remaining > _EPS
                cover = frac.sum(axis=1)
                spread = overflow & (cover > _EPS)
                if np.any(spread):
                    extra = np.where(
                        spread[:, None],
                        remaining[:, None] * frac / np.where(cover > _EPS, cover, 1.0)[:, None],
                        0.0,
                    )
                    alloc = alloc + extra
                    unexp = unexp + extra

                # Scatter back in window order — the same per-slice
                # accumulation order as the scalar per-window loop.
                np.add.at(amount, idxc[valid], alloc[valid])
                np.add.at(unexplained, idxc[valid], unexp[valid])
                np.add.at(coverage, idxc[valid], frac[valid])
        rate = np.divide(amount, coverage, out=np.zeros_like(amount), where=coverage > _EPS)
        unexp_rate = np.divide(
            unexplained, coverage, out=np.zeros_like(unexplained), where=coverage > _EPS
        )
        per_resource[name] = UpsampledResource(
            resource=name,
            capacity=rdemand.capacity,
            rate=rate,
            coverage=np.clip(coverage, 0.0, 1.0),
            unexplained=unexp_rate,
        )
    return UpsampledTrace(grid=grid, per_resource=per_resource)
