"""Versioned memmap-backed on-disk layout for columnar profiles.

File format ``grade10-columnar/1``::

    bytes 0..7    magic b"G10COL01"
    bytes 8..15   little-endian uint64: header length H
    bytes 16..16+H
                  UTF-8 JSON header (sorted keys, compact separators)
    data section  starts at the first 64-byte-aligned offset >= 16 + H;
                  every column is raw little-endian C-order bytes at a
                  64-byte-aligned offset *relative to the data section*

Header schema::

    {"format": "grade10-columnar/1",
     "meta": {...},                    # grid scalars, params, execution model
     "strings": ["..."],               # the shared pool
     "columns": {name: {"dtype": "<f8", "shape": [r, c], "offset": 0}}}

The header is canonical JSON (``sort_keys``, compact separators), so
``open`` followed by ``save`` reproduces the file byte-for-byte — the
round-trip property the test suite pins.  Writes go through a same-
directory tempfile + file fsync + ``os.replace`` + parent-directory fsync,
so readers never observe a torn file and a published file survives a
crash right after the rename.

Memmapped opens share a **single** read-only mapping across all columns
(one file descriptor per profile, released by
:meth:`~repro.core.columnar.arrays.ColumnarProfile.close` or the profile's
context manager) instead of one ``np.memmap`` — and one descriptor — per
column.
"""

from __future__ import annotations

import json
import mmap as _mmap_module
import os
import tempfile
from pathlib import Path

import numpy as np

from ...ioutils import fsync_dir
from .arrays import COLUMN_SPECS, ColumnarProfile

__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_MAGIC",
    "ColumnarFormatError",
    "open_columnar",
    "save_columnar",
]

COLUMNAR_MAGIC = b"G10COL01"
COLUMNAR_FORMAT = "grade10-columnar/1"
_ALIGN = 64


class ColumnarFormatError(ValueError):
    """Raised when a file is not a readable columnar profile."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def save_columnar(cp: ColumnarProfile, path: str | Path) -> Path:
    """Serialize ``cp`` to ``path`` atomically; returns the path."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    col_specs: dict[str, dict] = {}
    offset = 0
    for name, (dtype, _) in COLUMN_SPECS.items():
        arr = np.ascontiguousarray(cp.columns[name], dtype=np.dtype(dtype))
        offset = _align(offset)
        col_specs[name] = {"dtype": dtype, "shape": list(arr.shape), "offset": offset}
        arrays[name] = arr
        offset += arr.nbytes

    header = {
        "format": COLUMNAR_FORMAT,
        "meta": cp.meta,
        "strings": cp.strings,
        "columns": col_specs,
    }
    hdr = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    preamble = len(COLUMNAR_MAGIC) + 8 + len(hdr)
    data_start = _align(preamble)

    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(COLUMNAR_MAGIC)
            f.write(len(hdr).to_bytes(8, "little"))
            f.write(hdr)
            f.write(b"\0" * (data_start - preamble))
            pos = 0
            for name in COLUMN_SPECS:
                spec = col_specs[name]
                f.write(b"\0" * (spec["offset"] - pos))
                f.write(arrays[name].tobytes())
                pos = spec["offset"] + arrays[name].nbytes
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
        fsync_dir(path.parent if str(path.parent) else ".")
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def open_columnar(path: str | Path, *, mmap: bool = True) -> ColumnarProfile:
    """Open a saved columnar profile.

    With ``mmap=True`` (the default) all columns are read-only views into
    one shared memory mapping — slices page in on demand, so a
    million-slice profile streams through constant resident memory, and
    the whole profile holds a single file descriptor (call
    :meth:`ColumnarProfile.close` or use the profile as a context manager
    to release it).  ``mmap=False`` materializes plain in-memory arrays
    instead and holds no descriptor.
    """
    path = Path(path)
    try:
        with open(path, "rb") as f:
            magic = f.read(len(COLUMNAR_MAGIC))
            if magic != COLUMNAR_MAGIC:
                raise ColumnarFormatError(
                    f"{path}: bad magic {magic!r} (expected {COLUMNAR_MAGIC!r})"
                )
            hlen = int.from_bytes(f.read(8), "little")
            try:
                header = json.loads(f.read(hlen).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ColumnarFormatError(f"{path}: unreadable header: {exc}") from exc
    except OSError as exc:
        raise ColumnarFormatError(f"{path}: {exc}") from exc

    if header.get("format") != COLUMNAR_FORMAT:
        raise ColumnarFormatError(
            f"{path}: unsupported format {header.get('format')!r} "
            f"(expected {COLUMNAR_FORMAT!r})"
        )
    specs = header.get("columns") or {}
    unknown = specs.keys() - COLUMN_SPECS.keys()
    if unknown:
        raise ColumnarFormatError(f"{path}: unknown columns {sorted(unknown)}")
    data_start = _align(len(COLUMNAR_MAGIC) + 8 + hlen)

    shared: _mmap_module.mmap | None = None
    if mmap:
        try:
            with open(path, "rb") as f:
                shared = _mmap_module.mmap(f.fileno(), 0, access=_mmap_module.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise ColumnarFormatError(f"{path}: {exc}") from exc

    try:
        columns: dict[str, np.ndarray] = {}
        for name, (dtype, ndim) in COLUMN_SPECS.items():
            spec = specs.get(name)
            if spec is None:
                raise ColumnarFormatError(f"{path}: missing column {name!r}")
            if spec.get("dtype") != dtype or len(spec.get("shape", ())) != ndim:
                raise ColumnarFormatError(
                    f"{path}: column {name!r} has layout {spec!r}, "
                    f"expected dtype {dtype} ndim {ndim}"
                )
            shape = tuple(int(x) for x in spec["shape"])
            dt = np.dtype(dtype)
            count = int(np.prod(shape))
            col_start = data_start + int(spec["offset"])
            if count == 0:
                columns[name] = np.empty(shape, dtype=dt)
            elif shared is not None:
                if col_start + count * dt.itemsize > len(shared):
                    raise ColumnarFormatError(f"{path}: column {name!r} truncated")
                columns[name] = np.frombuffer(
                    shared, dtype=dt, count=count, offset=col_start
                ).reshape(shape)
            else:
                with open(path, "rb") as f:
                    f.seek(col_start)
                    data = np.fromfile(f, dtype=dt, count=count)
                if data.size != count:
                    raise ColumnarFormatError(f"{path}: column {name!r} truncated")
                columns[name] = data.reshape(shape)

        try:
            cp = ColumnarProfile(
                meta=header.get("meta") or {}, strings=list(header.get("strings") or []),
                columns=columns,
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ColumnarFormatError(f"{path}: invalid column data: {exc}") from exc
    except BaseException:
        if shared is not None:
            del columns  # release buffer exports so the mapping can close
            try:
                shared.close()
            except BufferError:  # pragma: no cover - defensive
                pass
        raise
    cp._mmap = shared
    return cp
