"""Trace-replay simulation (paper §III-F).

Grade10 estimates the impact of performance issues by *replaying* the
captured execution trace under a simplified system model:

* each phase instance has a fixed duration (as recorded, or as adjusted by
  an issue detector's what-if scenario);
* there are no delays between phases — an instance starts as soon as all of
  its predecessors have finished;
* precedence constraints come from the execution model's sibling DAGs
  (phase type A → B means every B instance under a parent waits for all A
  instances under the same parent — barrier semantics matching BSP
  frameworks);
* scheduling/locality constraints are honoured: instances of the same type
  under the same parent on the same thread replay sequentially on that
  thread (compute tasks cannot migrate between machines), while instances
  on different threads replay concurrently.

Replaying the unmodified trace yields the baseline simulated makespan; an
issue detector replays with shortened/rebalanced durations and compares.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .. import obs
from .phases import ExecutionModel
from .traces import ExecutionTrace, PhaseInstance

__all__ = [
    "SimulationError",
    "UnknownInstanceError",
    "SimulationResult",
    "ReplaySimulator",
]


class SimulationError(Exception):
    """A replay simulation cannot answer the question it was asked."""


class UnknownInstanceError(SimulationError, KeyError):
    """A schedule lookup named an instance id the simulation never saw.

    Subclasses :class:`KeyError` so existing ``except KeyError`` callers
    keep working; the message names the offending id and the nearest
    known ids.  The CLI maps :class:`SimulationError` to exit code 2,
    like the :class:`~repro.workloads.archive.ArchiveError` family.
    """

    def __init__(self, instance_id: str, known_ids: "list[str] | tuple[str, ...]") -> None:
        near = difflib.get_close_matches(str(instance_id), [str(k) for k in known_ids], n=3)
        hint = f"; nearest known ids: {', '.join(near)}" if near else ""
        message = (
            f"unknown instance id {instance_id!r}: not in the simulated "
            f"schedule ({len(known_ids)} instances){hint}"
        )
        super().__init__(message)
        self.instance_id = instance_id
        self.nearest = tuple(near)

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


@dataclass
class SimulationResult:
    """Outcome of one replay: per-instance schedule and makespan."""

    start: dict[str, float]
    end: dict[str, float]

    @property
    def makespan(self) -> float:
        if not self.end:
            return 0.0
        return max(self.end.values()) - min(self.start.values())

    def _lookup(self, table: dict[str, float], instance_id: str) -> float:
        try:
            return table[instance_id]
        except KeyError:
            raise UnknownInstanceError(instance_id, sorted(self.end)) from None

    def start_of(self, instance_id: str) -> float:
        """Simulated start time of one instance."""
        return self._lookup(self.start, instance_id)

    def end_of(self, instance_id: str) -> float:
        """Simulated end time of one instance."""
        return self._lookup(self.end, instance_id)

    def duration_of(self, instance_id: str) -> float:
        """Simulated duration of one instance."""
        return self._lookup(self.end, instance_id) - self._lookup(self.start, instance_id)


class ReplaySimulator:
    """Replays an execution trace with (optionally adjusted) phase durations.

    The dependency graph is built once from the trace and the execution
    model and compiled into level-scheduled index arrays (level = longest
    predecessor chain); each :meth:`simulate` call is then a handful of
    vectorized sweeps — one scatter-max per level — so what-if scenarios
    are cheap to evaluate in bulk.  :meth:`_simulate_scalar` is the
    per-instance reference implementation the array path replicates
    operation-for-operation.
    """

    def __init__(self, trace: ExecutionTrace, model: ExecutionModel | None = None) -> None:
        self.trace = trace
        self.model = model
        self._order: list[PhaseInstance] = []
        self._preds: dict[str, list[str]] = {}
        self._leaf_cache: dict[str, list[PhaseInstance]] = {}
        self._wait_paths: set[str] = set()
        if model is not None:
            self._wait_paths = {path for path, node in model.root.walk() if node.wait}
        with obs.span("simulate.build", n_instances=len(trace)):
            self._build_dependencies()

    # ------------------------------------------------------------------ #
    # Dependency construction
    # ------------------------------------------------------------------ #
    def _sibling_predecessor_types(self, parent_path: str | None, phase_path: str) -> set[str]:
        """Phase-type paths that must fully precede ``phase_path`` (same parent)."""
        if self.model is None:
            return set()
        name = phase_path.rsplit("/", 1)[-1]
        if parent_path is None:
            node = self.model.root
            prefix = ""
        else:
            try:
                node = self.model[parent_path]
            except KeyError:
                return set()
            prefix = parent_path
        preds: set[str] = set()
        for pred_name, succs in node.successors.items():
            if name in succs:
                preds.add(f"{prefix}/{pred_name}")
        return preds

    def _build_dependencies(self) -> None:
        # Only leaf instances carry durations; parents are aggregates whose
        # precedence relations are projected onto their leaf descendants.
        leaves = [i for i in self.trace.instances() if not self.trace.children_of(i)]
        leaves.sort(key=lambda i: (i.t_start, i.t_end, i.instance_id))
        self._order = leaves

        by_parent: dict[str | None, list[PhaseInstance]] = {}
        for inst in self.trace.instances():
            by_parent.setdefault(inst.parent_id, []).append(inst)

        deps: dict[str, set[str]] = {i.instance_id: set() for i in leaves}

        for parent_id, group in by_parent.items():
            parent_path = None if parent_id is None else self.trace[parent_id].phase_path
            by_type: dict[str, list[PhaseInstance]] = {}
            for inst in group:
                by_type.setdefault(inst.phase_path, []).append(inst)
            for insts in by_type.values():
                insts.sort(key=lambda i: (i.t_start, i.t_end, i.instance_id))

            for phase_path, insts in by_type.items():
                pred_types = self._sibling_predecessor_types(parent_path, phase_path)
                pred_instances = [p for t in pred_types for p in by_type.get(t, [])]
                # Same-location sequencing (no task migration): consecutive
                # same-type instances on the same machine/worker/thread chain
                # up; instances on different locations replay concurrently.
                last_on_key: dict[tuple[str | None, str | None, str | None], PhaseInstance] = {}
                for inst in insts:
                    # Locality: a per-machine phase waits only for same-
                    # machine predecessors (its own worker's pipeline); it
                    # waits for all of them when it has no machine, or when
                    # no predecessor shares its machine (global steps).
                    if inst.machine is not None:
                        local = [p for p in pred_instances if p.machine == inst.machine]
                        effective_preds = local if local else pred_instances
                    else:
                        effective_preds = pred_instances
                    pred_leaf_ids = [
                        leaf.instance_id
                        for p in effective_preds
                        for leaf in self._leaf_descendants(p)
                    ]
                    key = (inst.machine, inst.worker, inst.thread)
                    prev = last_on_key.get(key)
                    if prev is not None:
                        pred_leaf_ids.extend(
                            leaf.instance_id for leaf in self._leaf_descendants(prev)
                        )
                    last_on_key[key] = inst
                    if not pred_leaf_ids:
                        continue
                    for leaf in self._leaf_descendants(inst):
                        deps[leaf.instance_id].update(pred_leaf_ids)

        # Global same-thread sequencing: a named execution thread (core) runs
        # one leaf at a time, even across different parents — concurrent
        # dataflow stages sharing executor cores serialize on them.  This is
        # the "scheduling constraints related to concurrency" of §III-F.
        last_leaf_on_thread: dict[tuple[str, str | None, str], PhaseInstance] = {}
        for inst in leaves:
            if inst.thread is None or inst.machine is None:
                continue
            key = (inst.machine, inst.worker, inst.thread)
            prev = last_leaf_on_thread.get(key)
            if prev is not None:
                deps[inst.instance_id].add(prev.instance_id)
            last_leaf_on_thread[key] = inst

        # Explicit instance-level dependencies (e.g. a dataflow stage DAG),
        # projected onto leaf descendants like the structural ones.
        by_id = {i.instance_id: i for i in self.trace.instances()}
        for inst in self.trace.instances():
            if not inst.depends_on:
                continue
            pred_leaf_ids = [
                leaf.instance_id
                for pid in inst.depends_on
                if pid in by_id
                for leaf in self._leaf_descendants(by_id[pid])
            ]
            if not pred_leaf_ids:
                continue
            for leaf in self._leaf_descendants(inst):
                deps[leaf.instance_id].update(pred_leaf_ids)

        self._preds = {iid: sorted(s) for iid, s in deps.items()}

        # The cheap per-node arrays are built eagerly; the O(edges) level
        # compilation is deferred to the first replay, where its cost is
        # amortized across every what-if scenario the simulator answers.
        self._ids = [inst.instance_id for inst in self._order]
        self._idx = {iid: k for k, iid in enumerate(self._ids)}
        n = len(self._order)
        base = np.zeros(n, dtype=np.float64)
        wait = np.zeros(n, dtype=bool)
        for k, inst in enumerate(self._order):
            if inst.phase_path in self._wait_paths:
                wait[k] = True
            else:
                base[k] = inst.duration
        self._base_dur = base
        self._is_wait = wait
        self._levels_ready = False

    def _compile_levels(self) -> None:
        """Compile the dependency graph into level-scheduled index arrays.

        Nodes are indexed by their position in ``self._order``; an edge is
        kept only when the predecessor precedes the successor in that order
        (the scalar sweep ignores predecessors whose end time has not been
        computed yet, so the array path must too).  A node's *level* is the
        length of its longest kept predecessor chain; within a level every
        start time can be resolved with one scatter-max over the incoming
        edges, because all predecessor end times are already final.
        """
        n = len(self._order)
        idx = self._idx

        # Flatten the predecessor lists into edge index arrays (the only
        # remaining per-edge Python work is the id -> index translation).
        preds_by_node = [self._preds.get(iid, ()) for iid in self._ids]
        counts = np.fromiter((len(ps) for ps in preds_by_node), dtype=np.intp, count=n)
        flat = [pid for ps in preds_by_node for pid in ps]
        pred = np.fromiter(map(idx.__getitem__, flat), dtype=np.intp, count=len(flat))
        succ = np.repeat(np.arange(n, dtype=np.intp), counts)
        keep = pred < succ
        pred, succ = pred[keep], succ[keep]

        # Longest-chain levels via vectorized Kahn peeling: a node enters
        # the frontier when its last predecessor is removed, i.e. at
        # 1 + max(pred levels).
        indeg = np.bincount(succ, minlength=n).astype(np.intp)
        by_pred = np.argsort(pred, kind="stable")
        out_succ = succ[by_pred]
        out_indptr = np.searchsorted(pred[by_pred], np.arange(n + 1, dtype=np.intp))
        level = np.zeros(n, dtype=np.intp)
        frontier = np.flatnonzero(indeg == 0)
        self._level_nodes: list[np.ndarray] = []
        depth = 0
        while frontier.size:
            self._level_nodes.append(frontier)
            level[frontier] = depth
            depth += 1
            c = out_indptr[frontier + 1] - out_indptr[frontier]
            total = int(c.sum())
            starts = np.repeat(out_indptr[frontier], c)
            within = np.arange(total, dtype=np.intp) - np.repeat(
                np.cumsum(c) - c, c
            )
            succs = out_succ[starts + within]
            np.subtract.at(indeg, succs, 1)
            frontier = np.unique(succs[indeg[succs] == 0])

        # Group the in-edges by the successor's level so _simulate can
        # resolve one contiguous slice per scatter-max sweep.
        by_level = np.argsort(level[succ], kind="stable") if succ.size else succ
        self._edge_pred = pred[by_level]
        self._edge_succ = succ[by_level]
        bounds = np.searchsorted(
            level[self._edge_succ], np.arange(depth + 1, dtype=np.intp)
        )
        self._level_edges: list[tuple[int, int]] = [
            (int(bounds[d]), int(bounds[d + 1])) for d in range(depth)
        ]
        self._levels_ready = True

    def _leaf_descendants(self, inst: PhaseInstance) -> list[PhaseInstance]:
        cached = self._leaf_cache.get(inst.instance_id)
        if cached is not None:
            return cached
        kids = self.trace.children_of(inst)
        if not kids:
            result = [inst]
        else:
            result = [
                d for d in self.trace.descendants_of(inst) if not self.trace.children_of(d)
            ]
        self._leaf_cache[inst.instance_id] = result
        return result

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def simulate(self, durations: Mapping[str, float] | None = None) -> SimulationResult:
        """Replay with optional per-instance duration overrides.

        ``durations`` maps instance id → new duration in seconds; instances
        not in the map keep their recorded duration.  The instance order was
        topologically sorted at construction (observed start times are
        consistent with the dependency graph, since dependencies were
        derived from an actually-observed schedule).
        """
        with obs.span("simulate", n_overrides=0 if durations is None else len(durations)):
            return self._simulate(durations)

    def _simulate(self, durations: Mapping[str, float] | None) -> SimulationResult:
        if not self._levels_ready:
            self._compile_levels()
        dur = self._base_dur.copy()
        if durations:
            for iid, d in durations.items():
                k = self._idx.get(iid)
                # Unknown ids and wait-path instances are ignored, exactly
                # as in the scalar sweep (wait phases always replay at 0).
                if k is not None and not self._is_wait[k]:
                    dur[k] = d
        np.maximum(dur, 0.0, out=dur)

        n = len(self._ids)
        start = np.zeros(n, dtype=np.float64)
        end = np.zeros(n, dtype=np.float64)
        for nodes, (lo, hi) in zip(self._level_nodes, self._level_edges):
            if hi > lo:
                np.maximum.at(start, self._edge_succ[lo:hi], end[self._edge_pred[lo:hi]])
            end[nodes] = start[nodes] + dur[nodes]
        return SimulationResult(
            start=dict(zip(self._ids, start.tolist())),
            end=dict(zip(self._ids, end.tolist())),
        )

    def _simulate_scalar(self, durations: Mapping[str, float] | None) -> SimulationResult:
        """Reference implementation: one instance at a time, in trace order."""
        start: dict[str, float] = {}
        end: dict[str, float] = {}
        for inst in self._order:
            if inst.phase_path in self._wait_paths:
                # Elastic wait phase: dependencies only, no duration — its
                # recorded length is a property of the schedule, not work.
                dur = 0.0
            else:
                dur = inst.duration
                if durations is not None:
                    dur = durations.get(inst.instance_id, dur)
            s = 0.0
            for pid in self._preds.get(inst.instance_id, ()):  # all leaves
                e = end.get(pid)
                if e is not None and e > s:
                    s = e
            start[inst.instance_id] = s
            end[inst.instance_id] = s + max(dur, 0.0)
        return SimulationResult(start=start, end=end)

    def baseline(self) -> SimulationResult:
        """Replay with the recorded durations (the comparison baseline)."""
        return self.simulate(None)
