"""Upsampling coarse resource measurements to timeslice granularity (§III-D2).

Monitoring data arrives as average consumption rates over windows spanning
many timeslices.  The upsampler redistributes each window's total
consumption over the timeslices it covers, guided by the demand estimate:

1. consumption is first assigned to the **known (exact) demand** of each
   slice, proportionally, never exceeding the demand or the resource
   capacity (whichever is lower);
2. any remaining consumption is divided proportionally to the **variable
   demand weights** (load-balanced), again respecting per-slice capacity —
   a water-filling allocation: when a slice saturates, its excess share
   flows to the remaining unsaturated slices;
3. consumption that cannot be explained by any demand (measured usage in
   slices where no phase demands the resource) is spread uniformly over the
   window and reported as *unexplained*, so model gaps are visible rather
   than silently absorbed.

Each measurement is processed independently, exactly as in the paper.
:func:`upsample` executes all of a resource's windows at once through the
shared batched kernel (:func:`repro.core.columnar.pipeline.upsample_columnar`
— padded ``(n_windows, max_width)`` matrices, row-wise water-filling), the
same code path the columnar backend uses; the per-window scalar functions
(:func:`_upsample_window`, :func:`_water_fill`) are kept as the readable
reference implementation the batched kernel is checked against.

The module also implements the **constant-rate strawman** the paper
compares against in Table II (assume consumption is constant over the
measurement window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from .demand import DemandEstimate, ResourceDemand
from .timeline import TimeGrid, interval_slice_overlap
from .traces import ResourceTrace

__all__ = [
    "UpsampledResource",
    "UpsampledTrace",
    "upsample",
    "upsample_constant",
    "relative_sampling_error",
]

_EPS = 1e-12


@dataclass
class UpsampledResource:
    """Timeslice-granular consumption estimate for one resource.

    ``rate``
        Estimated consumption rate per slice (resource units).
    ``coverage``
        Fraction of each slice covered by at least one measurement window;
        slices with zero coverage were never monitored and have rate 0.
    ``unexplained``
        Portion of ``rate`` that no demand entry accounts for (model gap).
    """

    resource: str
    capacity: float
    rate: np.ndarray
    coverage: np.ndarray
    unexplained: np.ndarray

    @property
    def utilization(self) -> np.ndarray:
        """Per-slice utilization in ``[0, 1+]`` (rate / capacity)."""
        return self.rate / self.capacity


@dataclass
class UpsampledTrace:
    """Upsampled consumption estimates for all measured resources."""

    grid: TimeGrid
    per_resource: dict[str, UpsampledResource]

    def __getitem__(self, resource: str) -> UpsampledResource:
        return self.per_resource[resource]

    def __contains__(self, resource: str) -> bool:
        return resource in self.per_resource

    def resources(self) -> list[str]:
        """Names of the upsampled resources."""
        return list(self.per_resource)


def _water_fill(amount: float, weights: np.ndarray, headroom: np.ndarray) -> np.ndarray:
    """Distribute ``amount`` proportionally to ``weights``, capped by ``headroom``.

    Classic water-filling: allocate proportionally; freeze slices that hit
    their cap; redistribute the excess among the rest.  Returns the
    allocation (same shape as ``weights``); any amount that exceeds the
    total headroom is *not* allocated (the caller decides what to do with
    the residue).
    """
    alloc = np.zeros_like(weights)
    if amount <= _EPS:
        return alloc
    active = (weights > _EPS) & (headroom > _EPS)
    remaining = amount
    # Each iteration saturates at least one slice, so this terminates in at
    # most n iterations; in practice 1-3.
    while remaining > _EPS and np.any(active):
        w_sum = weights[active].sum()
        if w_sum <= _EPS:
            break
        share = remaining * weights / w_sum
        share[~active] = 0.0
        room = headroom - alloc
        over = share > room
        take = np.where(over, room, share)
        take[~active] = 0.0
        alloc += take
        remaining -= take.sum()
        newly_capped = over & active
        if not np.any(newly_capped):
            break
        active &= ~newly_capped
    return alloc


def _upsample_window(
    demand: ResourceDemand,
    lo: int,
    frac: np.ndarray,
    total: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Distribute one measurement window's total over slices ``lo .. lo+len(frac)``.

    ``total`` is in rate×slice units (window average rate × window length in
    slices).  Returns ``(allocation, unexplained)`` arrays over the covered
    slices, both in rate×slice units.
    """
    n = frac.size
    sl = slice(lo, lo + n)
    # Per-slice capacity and demand available within this window, scaled by
    # the fraction of the slice the window covers.
    cap = demand.capacity * frac
    exact = np.minimum(demand.exact_total[sl] * frac, cap)
    var_w = demand.variable_total[sl] * frac

    alloc = np.zeros(n)
    unexplained = np.zeros(n)
    remaining = total

    # Step 1: satisfy exact demand proportionally.
    exact_sum = exact.sum()
    if exact_sum > _EPS:
        if remaining >= exact_sum:
            alloc += exact
            remaining -= exact_sum
        else:
            alloc += exact * (remaining / exact_sum)
            remaining = 0.0

    # Step 2: water-fill the remainder over variable demand.
    if remaining > _EPS:
        filled = _water_fill(remaining, var_w, cap - alloc)
        alloc += filled
        remaining -= filled.sum()

    # Step 3: unexplained residue, spread over the window's coverage —
    # uniformly per covered slice-fraction, still respecting capacity first.
    if remaining > _EPS:
        headroom = cap - alloc
        filled = _water_fill(remaining, frac.astype(np.float64), headroom)
        alloc += filled
        unexplained += filled
        remaining -= filled.sum()
        if remaining > _EPS:
            # Even capacity cannot absorb it (measurement above capacity);
            # spread uniformly and flag it all as unexplained.
            cover = frac.sum()
            if cover > _EPS:
                extra = remaining * frac / cover
                alloc += extra
                unexplained += extra
    return alloc, unexplained


def upsample(
    resource_trace: ResourceTrace,
    demand: DemandEstimate,
    grid: TimeGrid,
) -> UpsampledTrace:
    """Upsample all measured consumable resources to timeslice granularity.

    Runs the batched water-filling kernel shared with the columnar backend
    (all of a resource's windows in one ``(n_windows, max_width)`` sweep).
    :func:`_upsample` below is the per-window scalar reference the kernel
    replicates operation-for-operation.
    """
    with obs.span("upsample", n_slices=grid.n_slices):
        # Lazy import: the pipeline module imports this one at load time.
        from .columnar.pipeline import _upsample_columnar

        return _upsample_columnar(resource_trace, demand, grid)


def _upsample(
    resource_trace: ResourceTrace,
    demand: DemandEstimate,
    grid: TimeGrid,
) -> UpsampledTrace:
    """Scalar reference implementation (one window at a time)."""
    per_resource: dict[str, UpsampledResource] = {}
    for name in resource_trace.measured_resources():
        if name not in demand:
            # Resource was monitored but is not in the resource model;
            # skip — there is no capacity or demand to guide upsampling.
            continue
        rdemand = demand[name]
        amount = np.zeros(grid.n_slices)
        unexplained = np.zeros(grid.n_slices)
        coverage = np.zeros(grid.n_slices)
        for m in resource_trace.measurements(name):
            lo, hi, frac = interval_slice_overlap(grid, m.t_start, m.t_end)
            if hi == lo:
                continue
            # The window's full consumption is distributed over its in-grid
            # slices.  A trailing monitoring window that extends past the
            # run's end dilutes its average with idle tail time, but all of
            # the consumption it reports happened inside the run — so the
            # total, not the in-grid duration, is what must be preserved.
            total = m.value * (m.t_end - m.t_start) / grid.slice_duration
            alloc, unexp = _upsample_window(rdemand, lo, frac, total)
            amount[lo:hi] += alloc
            unexplained[lo:hi] += unexp
            coverage[lo:hi] += frac
        rate = np.divide(amount, coverage, out=np.zeros_like(amount), where=coverage > _EPS)
        unexp_rate = np.divide(
            unexplained, coverage, out=np.zeros_like(unexplained), where=coverage > _EPS
        )
        per_resource[name] = UpsampledResource(
            resource=name,
            capacity=rdemand.capacity,
            rate=rate,
            coverage=np.clip(coverage, 0.0, 1.0),
            unexplained=unexp_rate,
        )
    return UpsampledTrace(grid=grid, per_resource=per_resource)


def upsample_constant(
    resource_trace: ResourceTrace,
    demand: DemandEstimate,
    grid: TimeGrid,
) -> UpsampledTrace:
    """Strawman upsampler: constant rate within each measurement window.

    This is the baseline the paper compares Grade10 against in Table II.
    """
    per_resource: dict[str, UpsampledResource] = {}
    for name in resource_trace.measured_resources():
        if name not in demand:
            continue
        rdemand = demand[name]
        amount = np.zeros(grid.n_slices)
        coverage = np.zeros(grid.n_slices)
        for m in resource_trace.measurements(name):
            lo, hi, frac = interval_slice_overlap(grid, m.t_start, m.t_end)
            if hi == lo:
                continue
            amount[lo:hi] += m.value * frac
            coverage[lo:hi] += frac
        rate = np.divide(amount, coverage, out=np.zeros_like(amount), where=coverage > _EPS)
        per_resource[name] = UpsampledResource(
            resource=name,
            capacity=rdemand.capacity,
            rate=rate,
            coverage=np.clip(coverage, 0.0, 1.0),
            unexplained=np.zeros(grid.n_slices),
        )
    return UpsampledTrace(grid=grid, per_resource=per_resource)


def relative_sampling_error(estimated: np.ndarray, ground_truth: np.ndarray) -> float:
    """Table II's error metric.

    The sum of absolute differences between the upsampled trace and the
    ground-truth trace, as a percentage of total resource consumption.
    Both arrays must be rates on the same grid.
    """
    estimated = np.asarray(estimated, dtype=np.float64)
    ground_truth = np.asarray(ground_truth, dtype=np.float64)
    if estimated.shape != ground_truth.shape:
        raise ValueError(
            f"shape mismatch: estimated {estimated.shape} vs ground truth {ground_truth.shape}"
        )
    denom = ground_truth.sum()
    if denom <= _EPS:
        return 0.0 if np.abs(estimated).sum() <= _EPS else float("inf")
    return float(np.abs(estimated - ground_truth).sum() / denom * 100.0)
