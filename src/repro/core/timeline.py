"""Time discretization onto a timeslice grid.

Grade10 discretizes time into a sequence of *timeslices*, assuming the system
under test is in a steady state within each slice (resource consumption is
constant, phases only start/end on slice boundaries).  The slice duration is
the key fidelity knob of the whole pipeline (paper §III-C); in practice it is
set to tens of milliseconds.

This module provides :class:`TimeGrid`, the shared coordinate system used by
every other stage: demand estimation, upsampling, attribution, bottleneck
identification, and issue simulation all operate on arrays indexed by slice.

All conversions are vectorized; the only Python-level loops in this module
are over *intervals*, never over slices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimeGrid", "rasterize_intervals", "interval_slice_overlap"]

#: Relative tolerance used when snapping event timestamps to slice boundaries.
_SNAP_RTOL = 1e-9


@dataclass(frozen=True)
class TimeGrid:
    """A uniform grid of timeslices covering ``[t0, t0 + n_slices * slice_duration)``.

    Parameters
    ----------
    t0:
        Absolute time of the left edge of slice ``0`` (seconds).
    slice_duration:
        Width of each slice (seconds); must be positive.
    n_slices:
        Number of slices in the grid; must be positive.
    """

    t0: float
    slice_duration: float
    n_slices: int

    def __post_init__(self) -> None:
        if self.slice_duration <= 0.0:
            raise ValueError(f"slice_duration must be > 0, got {self.slice_duration}")
        if self.n_slices <= 0:
            raise ValueError(f"n_slices must be > 0, got {self.n_slices}")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def covering(cls, t_start: float, t_end: float, slice_duration: float) -> "TimeGrid":
        """Build the smallest grid starting at ``t_start`` that covers ``[t_start, t_end]``.

        ``t_end == t_start`` yields a single-slice grid so that zero-length
        traces still have a well-defined coordinate system.
        """
        if t_end < t_start:
            raise ValueError(f"t_end ({t_end}) < t_start ({t_start})")
        # Snap the slice count with the same *relative* tolerance used by
        # slice_of/slice_range: a span that is (up to float round-off) an
        # exact multiple k of slice_duration must yield exactly k slices.
        # The previous absolute-tolerance ceil disagreed with the round
        # path in index lookup for large k (quotient error grows with k),
        # leaving a trailing slice beyond every event.
        q = (t_end - t_start) / slice_duration
        snapped = round(q)
        if abs(q - snapped) <= _SNAP_RTOL * max(1.0, abs(snapped)):
            q = snapped
        n = int(np.ceil(q))
        return cls(t0=t_start, slice_duration=slice_duration, n_slices=max(n, 1))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def t_end(self) -> float:
        """Absolute time of the right edge of the last slice."""
        return self.t0 + self.n_slices * self.slice_duration

    @property
    def edges(self) -> np.ndarray:
        """Array of ``n_slices + 1`` slice boundary timestamps."""
        return self.t0 + np.arange(self.n_slices + 1) * self.slice_duration

    @property
    def centers(self) -> np.ndarray:
        """Array of ``n_slices`` slice-center timestamps."""
        return self.t0 + (np.arange(self.n_slices) + 0.5) * self.slice_duration

    # ------------------------------------------------------------------ #
    # Coordinate transforms
    # ------------------------------------------------------------------ #
    def slice_of(self, t: float | np.ndarray) -> np.ndarray | int:
        """Index of the slice containing time ``t`` (clipped to the grid).

        Timestamps within a relative tolerance of a slice boundary are snapped
        to that boundary before flooring, so log timestamps produced exactly
        on boundaries never spill into a neighbouring slice through float
        round-off.
        """
        raw = (np.asarray(t, dtype=np.float64) - self.t0) / self.slice_duration
        snapped = np.round(raw)
        raw = np.where(np.abs(raw - snapped) <= _SNAP_RTOL * np.maximum(1.0, np.abs(snapped)), snapped, raw)
        idx = np.clip(np.floor(raw).astype(np.int64), 0, self.n_slices - 1)
        if np.ndim(t) == 0:
            return int(idx)
        return idx

    def slice_range(self, t_start: float, t_end: float) -> tuple[int, int]:
        """Half-open slice-index range ``[lo, hi)`` covered by ``[t_start, t_end)``.

        An empty interval maps to an empty range (``lo == hi``).  The result
        is clipped to the grid.
        """
        if t_end < t_start:
            raise ValueError(f"t_end ({t_end}) < t_start ({t_start})")
        lo_raw = (t_start - self.t0) / self.slice_duration
        hi_raw = (t_end - self.t0) / self.slice_duration
        lo_snap, hi_snap = np.round(lo_raw), np.round(hi_raw)
        if abs(lo_raw - lo_snap) <= _SNAP_RTOL * max(1.0, abs(lo_snap)):
            lo_raw = lo_snap
        if abs(hi_raw - hi_snap) <= _SNAP_RTOL * max(1.0, abs(hi_snap)):
            hi_raw = hi_snap
        lo = int(np.clip(np.floor(lo_raw), 0, self.n_slices))
        hi = int(np.clip(np.ceil(hi_raw), 0, self.n_slices))
        return lo, max(hi, lo)

    def slice_range_batch(
        self, t_start: np.ndarray, t_end: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`slice_range` over arrays of intervals.

        Returns ``(lo, hi)`` int64 arrays with the same boundary snapping
        as the scalar path — the columnar upsampler maps every
        measurement window to its slice span in one call instead of one
        Python-level ``slice_range`` per window.
        """
        t_start = np.asarray(t_start, dtype=np.float64)
        t_end = np.asarray(t_end, dtype=np.float64)
        if np.any(t_end < t_start):
            raise ValueError("t_end < t_start in at least one interval")
        lo_raw = (t_start - self.t0) / self.slice_duration
        hi_raw = (t_end - self.t0) / self.slice_duration
        lo_snap, hi_snap = np.round(lo_raw), np.round(hi_raw)
        lo_raw = np.where(
            np.abs(lo_raw - lo_snap) <= _SNAP_RTOL * np.maximum(1.0, np.abs(lo_snap)),
            lo_snap, lo_raw,
        )
        hi_raw = np.where(
            np.abs(hi_raw - hi_snap) <= _SNAP_RTOL * np.maximum(1.0, np.abs(hi_snap)),
            hi_snap, hi_raw,
        )
        lo = np.clip(np.floor(lo_raw), 0, self.n_slices).astype(np.int64)
        hi = np.clip(np.ceil(hi_raw), 0, self.n_slices).astype(np.int64)
        return lo, np.maximum(hi, lo)

    def time_of(self, slice_index: int) -> float:
        """Absolute time of the left edge of ``slice_index``."""
        return self.t0 + slice_index * self.slice_duration

    # ------------------------------------------------------------------ #
    # Resampling helpers
    # ------------------------------------------------------------------ #
    def coarsen(self, factor: int) -> "TimeGrid":
        """Return a grid with slices ``factor`` times wider (same origin).

        The coarse grid covers at least the same span; a partial trailing
        coarse slice is included when ``n_slices`` is not divisible by
        ``factor``.
        """
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        n = int(np.ceil(self.n_slices / factor))
        return TimeGrid(self.t0, self.slice_duration * factor, n)


def interval_slice_overlap(grid: TimeGrid, t_start: float, t_end: float) -> tuple[int, int, np.ndarray]:
    """Fractional overlap of ``[t_start, t_end)`` with each slice it touches.

    Returns ``(lo, hi, frac)`` where ``frac[i]`` is the fraction of slice
    ``lo + i`` covered by the interval (in ``[0, 1]``), for slices
    ``lo .. hi - 1``.  Used when attributing a measured quantity that accrued
    over an arbitrary interval onto the grid.
    """
    lo, hi = grid.slice_range(t_start, t_end)
    if hi == lo:
        return lo, hi, np.empty(0, dtype=np.float64)
    edges = grid.t0 + np.arange(lo, hi + 1) * grid.slice_duration
    left = np.maximum(edges[:-1], t_start)
    right = np.minimum(edges[1:], t_end)
    frac = np.clip((right - left) / grid.slice_duration, 0.0, 1.0)
    return lo, hi, frac


def rasterize_intervals(
    grid: TimeGrid,
    starts: np.ndarray,
    ends: np.ndarray,
    weights: np.ndarray | None = None,
    *,
    fractional: bool = True,
) -> np.ndarray:
    """Accumulate weighted intervals onto the slice grid.

    For every interval ``[starts[k], ends[k])`` with weight ``weights[k]``
    (default 1.0), add ``weight * overlap_fraction`` to each slice the
    interval overlaps.  With ``fractional=False`` the overlap fraction is
    replaced by a 0/1 indicator (any overlap counts fully) — useful for
    activity masks.

    The implementation is a vectorized difference-array scan: cost is
    ``O(n_intervals + n_slices)`` regardless of interval lengths.
    """
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    if starts.shape != ends.shape:
        raise ValueError("starts and ends must have the same shape")
    if weights is None:
        weights = np.ones_like(starts)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != starts.shape:
            raise ValueError("weights must match starts/ends shape")

    out = np.zeros(grid.n_slices, dtype=np.float64)
    if starts.size == 0:
        return out

    if not fractional:
        # Indicator accumulation: +w at first overlapped slice, -w after last.
        diff = np.zeros(grid.n_slices + 1, dtype=np.float64)
        for s, e, w in zip(starts, ends, weights):
            lo, hi = grid.slice_range(s, e)
            if hi > lo:
                diff[lo] += w
                diff[hi] -= w
        return np.cumsum(diff)[:-1]

    # Fractional accumulation via difference arrays on slice coordinates:
    # an interval covering slice coordinate range [a, b) contributes, to
    # slice i, w * len([a,b) ∩ [i,i+1)).  Split each interval into
    # (full-slice body) + (fractional head) + (fractional tail).
    a = np.clip((starts - grid.t0) / grid.slice_duration, 0.0, grid.n_slices)
    b = np.clip((ends - grid.t0) / grid.slice_duration, 0.0, grid.n_slices)
    a, b = np.minimum(a, b), np.maximum(a, b)

    ia = np.floor(a).astype(np.int64)
    ib = np.floor(b).astype(np.int64)
    # Intervals entirely inside one slice.
    same = ia == ib
    np.add.at(out, np.clip(ia[same], 0, grid.n_slices - 1), weights[same] * (b[same] - a[same]))

    multi = ~same
    if np.any(multi):
        ia_m, ib_m = ia[multi], ib[multi]
        a_m, b_m, w_m = a[multi], b[multi], weights[multi]
        # Head fraction in slice ia.
        np.add.at(out, ia_m, w_m * (ia_m + 1 - a_m))
        # Tail fraction in slice ib (ib may equal n_slices when b is exactly
        # the right edge of the grid; that tail has zero width, skip it).
        tail = ib_m < grid.n_slices
        np.add.at(out, ib_m[tail], w_m[tail] * (b_m[tail] - ib_m[tail]))
        # Full body: slices ia+1 .. ib-1 via difference array.
        diff = np.zeros(grid.n_slices + 1, dtype=np.float64)
        body = ib_m > ia_m + 1
        np.add.at(diff, ia_m[body] + 1, w_m[body])
        np.add.at(diff, np.minimum(ib_m[body], grid.n_slices), -w_m[body])
        out += np.cumsum(diff)[:-1]
    return out
