"""Time-window drill-down into a performance profile.

The hierarchical summaries aggregate over the whole run; analysts usually
want the opposite next: "what happened *during superstep 7*?".  A
:class:`WindowView` restricts a profile to a time interval (or to one
phase instance's lifetime) and reports, for just that window,

* per-resource consumption, average utilization, and saturation time,
* the phase instances active in the window with their overlap,
* blocked time per blocking resource.

Everything is computed from the profile's existing per-slice arrays — no
re-characterization — so drilling is instant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO

import numpy as np

from .bottlenecks import SATURATION_THRESHOLD
from .profile import PerformanceProfile
from .traces import PhaseInstance

__all__ = ["WindowView", "drill_down", "drill_into_instance"]


@dataclass
class WindowView:
    """Profile statistics restricted to ``[t_start, t_end)``."""

    t_start: float
    t_end: float
    #: resource -> (consumption in unit-seconds, mean utilization, saturated seconds)
    resources: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    #: instances overlapping the window, with their overlap in seconds
    active: list[tuple[PhaseInstance, float]] = field(default_factory=list)
    #: blocking resource -> blocked seconds within the window
    blocked: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def render(self, *, top: int = 12) -> str:
        """Plain-text summary of the window."""
        out = StringIO()
        out.write(f"window [{self.t_start:.3f}s, {self.t_end:.3f}s) — {self.duration:.3f}s\n")
        out.write("resources:\n")
        for name, (consumed, util, saturated) in sorted(
            self.resources.items(), key=lambda kv: -kv[1][1]
        ):
            line = f"  {name}: mean util {util:.0%}"
            if saturated > 0:
                line += f", saturated {saturated:.3f}s"
            out.write(line + "\n")
        out.write("active phases (by overlap):\n")
        for inst, overlap in sorted(self.active, key=lambda p: -p[1])[:top]:
            out.write(f"  {inst.phase_path} [{inst.instance_id}]: {overlap:.3f}s\n")
        if self.blocked:
            out.write("blocked time:\n")
            for resource, dur in sorted(self.blocked.items(), key=lambda kv: -kv[1]):
                out.write(f"  {resource}: {dur:.3f}s\n")
        return out.getvalue()


def drill_down(
    profile: PerformanceProfile,
    t_start: float,
    t_end: float,
    *,
    saturation_threshold: float = SATURATION_THRESHOLD,
) -> WindowView:
    """Restrict ``profile`` to a time window."""
    if t_end <= t_start:
        raise ValueError(f"window must have positive length: {t_start} .. {t_end}")
    grid = profile.grid
    lo, hi = grid.slice_range(t_start, t_end)
    view = WindowView(t_start=t_start, t_end=t_end)

    for name in profile.upsampled.resources():
        ur = profile.upsampled[name]
        rates = ur.rate[lo:hi]
        if rates.size == 0:
            view.resources[name] = (0.0, 0.0, 0.0)
            continue
        util = rates / ur.capacity
        view.resources[name] = (
            float(rates.sum() * grid.slice_duration),
            float(util.mean()),
            float(np.count_nonzero(util >= saturation_threshold) * grid.slice_duration),
        )

    for inst in profile.execution_trace.instances():
        overlap = min(inst.t_end, t_end) - max(inst.t_start, t_start)
        if overlap > 0:
            view.active.append((inst, overlap))
            for ev in inst.blocking:
                b = min(ev.t_end, t_end) - max(ev.t_start, t_start)
                if b > 0:
                    view.blocked[ev.resource] = view.blocked.get(ev.resource, 0.0) + b
    return view


def drill_into_instance(profile: PerformanceProfile, instance: PhaseInstance | str) -> WindowView:
    """Restrict ``profile`` to one phase instance's lifetime."""
    inst = (
        profile.execution_trace[instance] if isinstance(instance, str) else instance
    )
    if inst.duration <= 0:
        raise ValueError(f"instance {inst.instance_id!r} has zero duration")
    return drill_down(profile, inst.t_start, inst.t_end)
