"""Resource-bottleneck identification (paper §III-E).

Grade10 detects three kinds of resource bottlenecks:

* **Blocking bottlenecks** — whenever a phase is blocked on a blocking
  resource (GC pause, full message queue, lock), that resource is delaying
  the phase.  The blocked time per (phase, resource) is read directly from
  the blocking events in the trace; this corresponds to the notion of
  blocked time in Ousterhout et al.'s blocked time analysis.

* **Saturation bottlenecks** — whenever a consumable resource reaches full
  utilization, every active phase demanding it is bottlenecked on it.
  Detected on the *upsampled* per-slice consumption.

* **Exact-cap bottlenecks** — a phase limited by an Exact rule to a portion
  of a resource is bottlenecked when it uses (approximately) its full
  allowance, even if the resource as a whole is not saturated — one of the
  least understood phenomena in graph processing per the paper; Grade10's
  recommendation in this case is to raise the phase's allowance.

Results are reported per (phase instance, resource) with per-slice masks,
plus aggregation helpers per phase type used by the Figure 4 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .. import obs
from .attribution import AttributionResult
from .timeline import TimeGrid
from .traces import ExecutionTrace, PhaseInstance
from .upsample import UpsampledTrace

__all__ = [
    "BottleneckKind",
    "Bottleneck",
    "BottleneckReport",
    "find_bottlenecks",
    "SATURATION_THRESHOLD",
    "EXACT_CAP_THRESHOLD",
]

#: A consumable resource is considered saturated above this utilization.
#: Below 1.0 because real monitoring of a fully busy resource reads slightly
#: under nominal capacity (stalls, frequency scaling, sampling skew).
SATURATION_THRESHOLD = 0.93
#: An Exact-rule phase is considered capped above this fraction of its demand.
EXACT_CAP_THRESHOLD = 0.9
_EPS = 1e-12


class BottleneckKind(str, Enum):
    BLOCKING = "blocking"
    SATURATION = "saturation"
    EXACT_CAP = "exact-cap"


@dataclass(frozen=True)
class Bottleneck:
    """One detected bottleneck of a phase instance on a resource.

    ``duration`` is the total bottlenecked time in seconds.  For slice-based
    detections (saturation / exact-cap) ``slices`` is the boolean per-slice
    mask; blocking bottlenecks carry the raw blocked time instead.
    """

    kind: BottleneckKind
    instance_id: str
    phase_path: str
    resource: str
    duration: float
    slices: np.ndarray | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Bottleneck({self.kind.value}, {self.phase_path}#{self.instance_id!r}, "
            f"{self.resource}, {self.duration:.3f}s)"
        )


@dataclass
class BottleneckReport:
    """All bottlenecks found in one run."""

    grid: TimeGrid
    bottlenecks: list[Bottleneck] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.bottlenecks)

    def __iter__(self):
        return iter(self.bottlenecks)

    def for_instance(self, instance: PhaseInstance | str) -> list[Bottleneck]:
        """All bottlenecks detected for one phase instance."""
        iid = instance.instance_id if isinstance(instance, PhaseInstance) else instance
        return [b for b in self.bottlenecks if b.instance_id == iid]

    def for_resource(self, resource: str) -> list[Bottleneck]:
        """All bottlenecks on one resource."""
        return [b for b in self.bottlenecks if b.resource == resource]

    def for_kind(self, kind: BottleneckKind) -> list[Bottleneck]:
        """All bottlenecks of one detection kind."""
        return [b for b in self.bottlenecks if b.kind == kind]

    def bottleneck_time_by_phase_type(self, resource: str | None = None) -> dict[str, float]:
        """Total bottlenecked seconds per phase type (optionally one resource)."""
        out: dict[str, float] = {}
        for b in self.bottlenecks:
            if resource is not None and b.resource != resource:
                continue
            out[b.phase_path] = out.get(b.phase_path, 0.0) + b.duration
        return out

    def bottleneck_time_by_resource(self) -> dict[str, float]:
        """Total bottlenecked seconds per resource."""
        out: dict[str, float] = {}
        for b in self.bottlenecks:
            out[b.resource] = out.get(b.resource, 0.0) + b.duration
        return out

    def bottleneck_mask(self, instance_id: str, resource: str) -> np.ndarray:
        """Combined per-slice bottleneck mask of an instance on a resource."""
        mask = np.zeros(self.grid.n_slices, dtype=bool)
        for b in self.bottlenecks:
            if b.instance_id == instance_id and b.resource == resource and b.slices is not None:
                mask |= b.slices
        return mask


def find_bottlenecks(
    trace: ExecutionTrace,
    upsampled: UpsampledTrace,
    attribution: AttributionResult,
    *,
    saturation_threshold: float = SATURATION_THRESHOLD,
    exact_cap_threshold: float = EXACT_CAP_THRESHOLD,
    min_duration: float = 0.0,
) -> BottleneckReport:
    """Run all three bottleneck detectors.

    ``min_duration`` suppresses bottlenecks shorter than the given number of
    seconds (the paper reports issues only above an arbitrary minimum
    threshold).
    """
    with obs.span("bottlenecks"):
        return _find_bottlenecks(
            trace,
            upsampled,
            attribution,
            saturation_threshold=saturation_threshold,
            exact_cap_threshold=exact_cap_threshold,
            min_duration=min_duration,
        )


def _find_bottlenecks(
    trace: ExecutionTrace,
    upsampled: UpsampledTrace,
    attribution: AttributionResult,
    *,
    saturation_threshold: float,
    exact_cap_threshold: float,
    min_duration: float,
) -> BottleneckReport:
    grid = upsampled.grid
    report = BottleneckReport(grid=grid)

    # --- Blocking bottlenecks: straight from the trace's blocking events. --
    for inst in trace.instances():
        per_resource: dict[str, float] = {}
        for ev in inst.blocking:
            per_resource[ev.resource] = per_resource.get(ev.resource, 0.0) + ev.duration
        for res, dur in per_resource.items():
            if dur >= max(min_duration, _EPS):
                report.bottlenecks.append(
                    Bottleneck(BottleneckKind.BLOCKING, inst.instance_id, inst.phase_path, res, dur)
                )

    # --- Saturation and exact-cap bottlenecks on consumable resources. ----
    for resource in upsampled.resources():
        if resource not in attribution:
            continue
        ra = attribution[resource]
        ur = upsampled[resource]
        saturated = ur.utilization >= saturation_threshold  # (n_slices,)

        for row, iid in enumerate(ra.instance_ids):
            inst_usage = ra.usage[row]
            inst_demand = ra.demand[row]
            active = inst_demand > _EPS
            phase_path = trace[iid].phase_path

            # Saturation: active while the resource is at full utilization.
            sat_mask = saturated & active
            sat_time = float(sat_mask.sum()) * grid.slice_duration
            if sat_time >= max(min_duration, grid.slice_duration / 2):
                report.bottlenecks.append(
                    Bottleneck(
                        BottleneckKind.SATURATION, iid, phase_path, resource, sat_time, sat_mask
                    )
                )

            # Exact cap: usage reaches the phase's exact demand while the
            # resource itself still has headroom.
            if ra.is_exact[row]:
                capped = active & (inst_usage >= exact_cap_threshold * inst_demand) & ~saturated
                cap_time = float(capped.sum()) * grid.slice_duration
                if cap_time >= max(min_duration, grid.slice_duration / 2):
                    report.bottlenecks.append(
                        Bottleneck(
                            BottleneckKind.EXACT_CAP, iid, phase_path, resource, cap_time, capped
                        )
                    )
    return report
