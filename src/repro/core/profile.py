"""End-to-end performance characterization pipeline (paper Fig. 1, steps 6-9).

:class:`Grade10` ties the stages together: given the expert-provided
execution model, resource model, and attribution rules, plus a run's
execution and resource traces, :meth:`Grade10.characterize` produces a
:class:`PerformanceProfile` holding

* the timeslice grid,
* the demand estimate (§III-D1),
* the upsampled resource trace (§III-D2),
* the per-phase attribution (§III-D3),
* the bottleneck report (§III-E), and
* the performance-issue report with optimistic impact estimates (§III-F).

The profile object is what examples, benchmarks, and the report renderer
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .. import obs
from .attribution import AttributionResult, attribute
from .bottlenecks import (
    EXACT_CAP_THRESHOLD,
    SATURATION_THRESHOLD,
    BottleneckReport,
    find_bottlenecks,
)
from .demand import DemandEstimate, estimate_demand
from .issues import DEFAULT_MIN_IMPROVEMENT, IssueReport, detect_issues
from .outliers import (
    DEFAULT_MIN_PHASE_DURATION,
    DEFAULT_THRESHOLD,
    OutlierReport,
    find_outliers,
)
from .phases import ExecutionModel
from .resources import ResourceModel
from .rules import RuleMatrix
from .timeline import TimeGrid
from .traces import ExecutionTrace, ResourceTrace
from .upsample import UpsampledTrace, upsample

__all__ = ["Grade10", "PerformanceProfile", "PROFILE_BACKENDS"]

#: Default timeslice duration (seconds); the paper uses tens of milliseconds.
DEFAULT_SLICE_DURATION = 0.010

#: Pipeline backends: the per-event object graph, or the dense columnar
#: fast paths of :mod:`repro.core.columnar` (equivalent outputs; see
#: docs/columnar.md for the tolerance contract).
PROFILE_BACKENDS = ("objects", "columnar")


@dataclass
class PerformanceProfile:
    """The fine-grained performance profile of one workload run."""

    grid: TimeGrid
    execution_trace: ExecutionTrace
    resource_trace: ResourceTrace
    demand: DemandEstimate
    upsampled: UpsampledTrace
    attribution: AttributionResult
    bottlenecks: BottleneckReport
    issues: IssueReport
    outliers: OutlierReport
    #: The model and analysis parameters that produced this profile;
    #: attached by :meth:`Grade10.characterize` so the columnar converter
    #: can embed them (hand-built profiles may leave them unset).
    execution_model: ExecutionModel | None = None
    analysis_params: dict[str, Any] | None = None

    @property
    def makespan(self) -> float:
        return self.execution_trace.makespan

    def check_invariants(self, *, rel_tol: float = 1e-6) -> "InvariantReport":
        """Run the pipeline invariant checker on this profile.

        See :mod:`repro.core.invariants` for the invariant catalog.
        """
        from .invariants import check_profile

        return check_profile(self, rel_tol=rel_tol)


class Grade10:
    """The Grade10 performance characterization framework.

    Parameters mirror the user-supplied inputs of the paper's Figure 1:
    the execution model (component 4), the resource model (component 5),
    and the attribution rules (§III-D1).

    Example
    -------
    >>> g10 = Grade10(execution_model, resource_model, rules)
    >>> profile = g10.characterize(execution_trace, resource_trace)
    >>> profile.bottlenecks.bottleneck_time_by_resource()
    """

    def __init__(
        self,
        execution_model: ExecutionModel,
        resource_model: ResourceModel,
        rules: RuleMatrix | None = None,
        *,
        slice_duration: float = DEFAULT_SLICE_DURATION,
        saturation_threshold: float = SATURATION_THRESHOLD,
        exact_cap_threshold: float = EXACT_CAP_THRESHOLD,
        min_improvement: float = DEFAULT_MIN_IMPROVEMENT,
        outlier_threshold: float = DEFAULT_THRESHOLD,
        min_phase_duration: float = DEFAULT_MIN_PHASE_DURATION,
        profile_backend: str = "objects",
    ) -> None:
        if profile_backend not in PROFILE_BACKENDS:
            raise ValueError(
                f"unknown profile_backend {profile_backend!r} "
                f"(expected one of {PROFILE_BACKENDS})"
            )
        execution_model.validate()
        self.profile_backend = profile_backend
        self.execution_model = execution_model
        self.resource_model = resource_model
        self.rules = rules if rules is not None else RuleMatrix()
        self.slice_duration = slice_duration
        self.saturation_threshold = saturation_threshold
        self.exact_cap_threshold = exact_cap_threshold
        self.min_improvement = min_improvement
        self.outlier_threshold = outlier_threshold
        self.min_phase_duration = min_phase_duration

    def characterize(
        self,
        execution_trace: ExecutionTrace,
        resource_trace: ResourceTrace,
        *,
        grid: TimeGrid | None = None,
    ) -> PerformanceProfile:
        """Run the full pipeline on one run's traces."""
        if len(execution_trace) == 0:
            raise ValueError("execution trace is empty — nothing to characterize")
        if grid is None:
            grid = execution_trace.grid(self.slice_duration)
        if self.profile_backend == "columnar":
            # Imported lazily: repro.core.columnar imports this module for
            # the converters, so a top-level import would be circular.
            from .columnar import (
                estimate_demand_columnar,
                find_bottlenecks_columnar,
                upsample_columnar,
            )

            with obs.span("demand", n_instances=len(execution_trace)):
                demand = estimate_demand_columnar(
                    execution_trace, self.resource_model, self.rules, grid
                )
            upsampled = upsample_columnar(resource_trace, demand, grid)
            bottleneck_finder = find_bottlenecks_columnar
        else:
            with obs.span("demand", n_instances=len(execution_trace)):
                demand = estimate_demand(execution_trace, self.resource_model, self.rules, grid)
            upsampled = upsample(resource_trace, demand, grid)
            bottleneck_finder = find_bottlenecks
        attribution = attribute(upsampled, demand, execution_trace)
        bottlenecks = bottleneck_finder(
            execution_trace,
            upsampled,
            attribution,
            saturation_threshold=self.saturation_threshold,
            exact_cap_threshold=self.exact_cap_threshold,
        )
        with obs.span("issues"):
            issues = detect_issues(
                execution_trace,
                self.execution_model,
                bottlenecks,
                upsampled,
                attribution,
                min_improvement=self.min_improvement,
            )
        with obs.span("outliers"):
            outliers = find_outliers(
                execution_trace,
                self.execution_model,
                threshold=self.outlier_threshold,
                min_phase_duration=self.min_phase_duration,
            )
        return PerformanceProfile(
            grid=grid,
            execution_trace=execution_trace,
            resource_trace=resource_trace,
            demand=demand,
            upsampled=upsampled,
            attribution=attribution,
            bottlenecks=bottlenecks,
            issues=issues,
            outliers=outliers,
            execution_model=self.execution_model,
            analysis_params={
                "slice_duration": self.slice_duration,
                "saturation_threshold": self.saturation_threshold,
                "exact_cap_threshold": self.exact_cap_threshold,
                "min_improvement": self.min_improvement,
                "outlier_threshold": self.outlier_threshold,
                "min_phase_duration": self.min_phase_duration,
                "profile_backend": self.profile_backend,
            },
        )
