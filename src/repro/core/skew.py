"""Decomposition of imbalance into its causes (paper §IV-D).

Figure 6's analysis distinguishes two *causes* of the imbalance that the
issue detector quantifies in aggregate:

* **cross-worker imbalance** — median thread durations differ between
  workers (6.4-20.5 s in the paper's example): poor workload distribution,
  fixable by better partitioning;
* **within-worker outliers** — some threads take far longer than their
  same-worker siblings (the sync bug): a runtime defect, invisible to
  partitioning metrics.

:func:`decompose_imbalance` separates the two for every concurrent
same-type group: the group's imbalance cost (slowest phase minus the
balanced mean) splits into the part explained by worker medians and the
residual within workers.  A high within-worker share on an otherwise
well-partitioned job is the §IV-D bug signature the paper's debugging
story turns on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from .phases import ExecutionModel
from .traces import ExecutionTrace, PhaseInstance

__all__ = ["GroupSkew", "SkewReport", "decompose_imbalance", "imbalance_timeline"]

_EPS = 1e-12


@dataclass
class GroupSkew:
    """Imbalance decomposition of one concurrent same-type group."""

    phase_path: str
    parent_id: str | None
    n_phases: int
    n_workers: int
    mean_duration: float
    longest: float
    #: slowest worker median minus the overall mean: distribution skew
    cross_worker_cost: float
    #: slowest phase minus its own worker's median: runtime outlier skew
    within_worker_cost: float

    @property
    def imbalance_cost(self) -> float:
        """Seconds the group loses to imbalance (slowest vs. balanced mean)."""
        return max(self.longest - self.mean_duration, 0.0)

    @property
    def within_worker_share(self) -> float:
        """Fraction of the imbalance cost attributable to same-worker outliers."""
        total = self.cross_worker_cost + self.within_worker_cost
        if total <= _EPS:
            return 0.0
        return self.within_worker_cost / total


@dataclass
class SkewReport:
    """Imbalance-cause decomposition across all groups of a run."""

    groups: list[GroupSkew] = field(default_factory=list)

    def __iter__(self):
        return iter(self.groups)

    def __len__(self) -> int:
        return len(self.groups)

    def by_phase_type(self) -> dict[str, tuple[float, float]]:
        """Per phase type: total (cross-worker, within-worker) seconds."""
        out: dict[str, tuple[float, float]] = {}
        for g in self.groups:
            cross, within = out.get(g.phase_path, (0.0, 0.0))
            out[g.phase_path] = (cross + g.cross_worker_cost, within + g.within_worker_cost)
        return out

    def total_within_worker_share(self) -> float:
        """Run-wide fraction of imbalance cost caused by same-worker outliers."""
        cross = sum(g.cross_worker_cost for g in self.groups)
        within = sum(g.within_worker_cost for g in self.groups)
        if cross + within <= _EPS:
            return 0.0
        return within / (cross + within)


def _worker_of(inst: PhaseInstance) -> str:
    return inst.worker or inst.machine or "?"


def imbalance_timeline(
    trace: ExecutionTrace,
    model: ExecutionModel | None,
    phase_path: str,
    *,
    min_group_size: int = 2,
) -> list[tuple[float, float]]:
    """Per-occurrence imbalance of one phase type over the run.

    Returns ``(group_start_time, imbalance_cost_seconds)`` for every
    concurrent group of ``phase_path`` (one per superstep/iteration),
    sorted by time — how the imbalance evolves as the algorithm progresses
    (e.g. BFS gather imbalance spikes with the frontier bulge; a sporadic
    sync-bug injection shows up as an isolated spike).
    """
    points: list[tuple[float, float]] = []
    for (_, path), insts in trace.concurrent_groups().items():
        if path != phase_path or len(insts) < min_group_size:
            continue
        durations = [i.duration for i in insts]
        mean = sum(durations) / len(durations)
        cost = max(max(durations) - mean, 0.0)
        points.append((min(i.t_start for i in insts), cost))
    return sorted(points)


def decompose_imbalance(
    trace: ExecutionTrace,
    model: ExecutionModel | None = None,
    *,
    min_group_size: int = 4,
) -> SkewReport:
    """Split every concurrent group's imbalance into its two causes."""
    report = SkewReport()
    for (parent_id, phase_path), insts in sorted(
        trace.concurrent_groups().items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
    ):
        if len(insts) < min_group_size:
            continue
        if model is not None:
            try:
                node = model[phase_path]
            except KeyError:
                continue
            if not node.concurrent or not node.balanceable:
                continue

        by_worker: dict[str, list[float]] = {}
        for inst in insts:
            by_worker.setdefault(_worker_of(inst), []).append(inst.duration)
        durations = [i.duration for i in insts]
        mean = sum(durations) / len(durations)
        longest = max(durations)
        medians = {w: median(ds) for w, ds in by_worker.items()}
        slowest_worker_median = max(medians.values())

        # Cross-worker: how much the slowest worker's *typical* thread
        # exceeds the balanced mean.  Within-worker: how much the slowest
        # thread exceeds its own worker's typical thread.
        cross = max(slowest_worker_median - mean, 0.0)
        slowest_inst = max(insts, key=lambda i: i.duration)
        within = max(slowest_inst.duration - medians[_worker_of(slowest_inst)], 0.0)

        report.groups.append(
            GroupSkew(
                phase_path=phase_path,
                parent_id=parent_id,
                n_phases=len(insts),
                n_workers=len(by_worker),
                mean_duration=mean,
                longest=longest,
                cross_worker_cost=cross,
                within_worker_cost=within,
            )
        )
    return report
