"""Performance-issue detection (paper §III-F).

For each candidate issue Grade10 determines how fixing it would change the
durations of a specific set of phases, replays the trace with the adjusted
durations (:mod:`repro.core.simulation`), and reports the difference between
the optimistic makespan and the baseline simulated makespan — an upper
bound on the achievable improvement.  Issues below a minimum improvement
threshold are suppressed.

Two issue classes are implemented, matching the paper:

* **Extensive resource bottlenecks** — for each resource, estimate how much
  shorter each bottlenecked phase could become *until another resource
  becomes the bottleneck*: a slice bottlenecked on resource ``r`` can only
  compress until the busiest other resource used by the phase saturates.
  Blocking-resource bottlenecks compress by the full blocked time.

* **Imbalanced execution** — sets of concurrent phases of the same type
  (same parent) are assumed to have interchangeable work; the what-if
  scenario gives every phase in the set the mean duration (total duration
  preserved) and replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .attribution import AttributionResult
from .bottlenecks import BottleneckKind, BottleneckReport
from .phases import ExecutionModel
from .simulation import ReplaySimulator
from .traces import ExecutionTrace
from .upsample import UpsampledTrace

__all__ = [
    "PerformanceIssue",
    "IssueReport",
    "detect_bottleneck_issues",
    "detect_imbalance_issues",
    "detect_issues",
    "DEFAULT_MIN_IMPROVEMENT",
]

#: Issues improving the makespan by less than this fraction are suppressed.
DEFAULT_MIN_IMPROVEMENT = 0.01
_EPS = 1e-12


@dataclass(frozen=True)
class PerformanceIssue:
    """One detected issue with its optimistic impact estimate.

    ``makespan_reduction`` is in seconds; ``improvement`` is the fractional
    reduction relative to the baseline simulated makespan.
    """

    kind: str
    subject: str
    description: str
    affected_instances: tuple[str, ...]
    baseline_makespan: float
    optimistic_makespan: float

    @property
    def makespan_reduction(self) -> float:
        return self.baseline_makespan - self.optimistic_makespan

    @property
    def improvement(self) -> float:
        if self.baseline_makespan <= _EPS:
            return 0.0
        return self.makespan_reduction / self.baseline_makespan


@dataclass
class IssueReport:
    """All performance issues detected in one run, sorted by impact."""

    baseline_makespan: float
    issues: list[PerformanceIssue] = field(default_factory=list)

    def __iter__(self):
        return iter(self.issues)

    def __len__(self) -> int:
        return len(self.issues)

    def top(self, n: int = 10) -> list[PerformanceIssue]:
        """The ``n`` highest-impact issues, by absolute makespan reduction."""
        return sorted(self.issues, key=lambda i: i.makespan_reduction, reverse=True)[:n]

    def by_kind(self, kind: str) -> list[PerformanceIssue]:
        """Issues of one kind (``resource-bottleneck`` / ``imbalance``)."""
        return [i for i in self.issues if i.kind == kind]

    def by_subject(self, subject: str) -> list[PerformanceIssue]:
        """Issues about one subject (a resource name or phase path)."""
        return [i for i in self.issues if i.subject == subject]


def _bottleneck_reductions(
    resource: str,
    trace: ExecutionTrace,
    report: BottleneckReport,
    upsampled: UpsampledTrace,
    attribution: AttributionResult | None,
) -> dict[str, float]:
    """Per-instance duration reductions from removing bottlenecks on ``resource``.

    For blocking resources, a phase recovers its full blocked time.  For
    consumable resources, each bottlenecked slice compresses until the
    busiest *other* resource the phase uses would saturate: a slice where
    another resource runs at utilization ``u`` can shrink to ``u`` of its
    width, recovering ``(1 - u) × slice_duration``.
    """
    grid = report.grid
    reductions: dict[str, float] = {}
    for b in report.for_resource(resource):
        if b.kind == BottleneckKind.BLOCKING:
            reductions[b.instance_id] = reductions.get(b.instance_id, 0.0) + b.duration
            continue
        if b.slices is None:
            continue
        # Utilization of the other resources this instance uses, per slice.
        next_util = np.zeros(grid.n_slices)
        if attribution is not None:
            for other in upsampled.resources():
                if other == resource or other not in attribution:
                    continue
                dem = attribution.demand_of(b.instance_id, other)
                used = dem > _EPS
                if not np.any(used):
                    continue
                util = upsampled[other].utilization
                np.maximum(next_util, np.where(used, util, 0.0), out=next_util)
        recovered = float(np.sum((1.0 - np.minimum(next_util[b.slices], 1.0)))) * grid.slice_duration
        if recovered > 0.0:
            reductions[b.instance_id] = reductions.get(b.instance_id, 0.0) + recovered
    # A phase can never shrink below zero.
    for iid, red in list(reductions.items()):
        reductions[iid] = min(red, trace[iid].duration)
    return reductions


def detect_bottleneck_issues(
    trace: ExecutionTrace,
    model: ExecutionModel | None,
    report: BottleneckReport,
    upsampled: UpsampledTrace,
    attribution: AttributionResult | None = None,
    *,
    min_improvement: float = DEFAULT_MIN_IMPROVEMENT,
    simulator: ReplaySimulator | None = None,
    resource_groups: dict[str, list[str]] | None = None,
) -> IssueReport:
    """Estimate the impact of removing all bottlenecks on each resource.

    ``resource_groups`` evaluates named groups of resources jointly instead
    of single resources — e.g. ``{"compute": ["cpu@m0", "cpu@m1", ...]}``
    simulates eliminating *all* CPU bottlenecks cluster-wide, which is how
    Figure 4 reports bottleneck impact per resource class.
    """
    sim = simulator or ReplaySimulator(trace, model)
    baseline = sim.baseline().makespan
    issues: list[PerformanceIssue] = []

    if resource_groups is None:
        groups: dict[str, list[str]] = {r: [r] for r in sorted({b.resource for b in report})}
    else:
        groups = dict(resource_groups)

    for subject, members in groups.items():
        reductions: dict[str, float] = {}
        for resource in members:
            for iid, red in _bottleneck_reductions(
                resource, trace, report, upsampled, attribution
            ).items():
                reductions[iid] = reductions.get(iid, 0.0) + red
        if not reductions:
            continue
        durations = {
            iid: max(trace[iid].duration - red, 0.0) for iid, red in reductions.items()
        }
        optimistic = sim.simulate(durations).makespan
        issue = PerformanceIssue(
            kind="resource-bottleneck",
            subject=subject,
            description=(
                f"Removing all bottlenecks on {subject!r} could reduce the makespan by "
                f"{baseline - optimistic:.3f}s ({(baseline - optimistic) / max(baseline, _EPS):.1%})"
            ),
            affected_instances=tuple(sorted(reductions)),
            baseline_makespan=baseline,
            optimistic_makespan=optimistic,
        )
        if issue.improvement >= min_improvement:
            issues.append(issue)
    return IssueReport(baseline_makespan=baseline, issues=issues)


def detect_imbalance_issues(
    trace: ExecutionTrace,
    model: ExecutionModel | None,
    *,
    min_improvement: float = DEFAULT_MIN_IMPROVEMENT,
    min_group_size: int = 2,
    simulator: ReplaySimulator | None = None,
) -> IssueReport:
    """Estimate the impact of perfectly balancing concurrent same-type phases.

    Groups are (parent instance, phase type) sets; only groups whose phase
    type is marked ``concurrent`` in the model (or any group when no model
    is given) are considered, and only work within one group is treated as
    interchangeable — e.g. compute phases of one superstep, never across
    supersteps.  Issues are reported per phase *type*, rebalancing all of
    that type's groups at once, which is how Figure 5 aggregates them.
    """
    sim = simulator or ReplaySimulator(trace, model)
    baseline = sim.baseline().makespan
    issues: list[PerformanceIssue] = []

    # Collect candidate groups per phase type.
    groups_by_type: dict[str, list[list[str]]] = {}
    for (parent_id, phase_path), insts in trace.concurrent_groups().items():
        if len(insts) < min_group_size:
            continue
        if model is not None:
            try:
                node = model[phase_path]
            except KeyError:
                continue
            if not node.concurrent or not node.balanceable:
                continue
        groups_by_type.setdefault(phase_path, []).append([i.instance_id for i in insts])

    for phase_path, groups in sorted(groups_by_type.items()):
        durations: dict[str, float] = {}
        affected: list[str] = []
        for group in groups:
            mean = float(np.mean([trace[iid].duration for iid in group]))
            for iid in group:
                inst = trace[iid]
                kids = trace.children_of(inst)
                if not kids:
                    durations[iid] = mean
                else:
                    # Inner instance (e.g. a per-worker Compute wrapping its
                    # threads): equalize by scaling every leaf descendant —
                    # "perfectly balanced" across workers while leaf totals
                    # shrink/grow proportionally.
                    scale = mean / inst.duration if inst.duration > 0 else 1.0
                    for desc in trace.descendants_of(inst):
                        if not trace.children_of(desc):
                            durations[desc.instance_id] = desc.duration * scale
                affected.append(iid)
        optimistic = sim.simulate(durations).makespan
        issue = PerformanceIssue(
            kind="imbalance",
            subject=phase_path,
            description=(
                f"Perfectly balancing {len(affected)} {phase_path!r} phases across "
                f"{len(groups)} group(s) could reduce the makespan by "
                f"{baseline - optimistic:.3f}s ({(baseline - optimistic) / max(baseline, _EPS):.1%})"
            ),
            affected_instances=tuple(affected),
            baseline_makespan=baseline,
            optimistic_makespan=optimistic,
        )
        if issue.improvement >= min_improvement:
            issues.append(issue)
    return IssueReport(baseline_makespan=baseline, issues=issues)


def detect_issues(
    trace: ExecutionTrace,
    model: ExecutionModel | None,
    report: BottleneckReport,
    upsampled: UpsampledTrace,
    attribution: AttributionResult | None = None,
    *,
    min_improvement: float = DEFAULT_MIN_IMPROVEMENT,
) -> IssueReport:
    """Run all issue detectors and merge their reports."""
    sim = ReplaySimulator(trace, model)
    b = detect_bottleneck_issues(
        trace, model, report, upsampled, attribution,
        min_improvement=min_improvement, simulator=sim,
    )
    i = detect_imbalance_issues(trace, model, min_improvement=min_improvement, simulator=sim)
    return IssueReport(baseline_makespan=b.baseline_makespan, issues=b.issues + i.issues)
