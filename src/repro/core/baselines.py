"""Baseline analyses the paper compares Grade10 against.

Two comparators appear in the paper:

* the **constant-rate upsampling strawman** of Table II — implemented in
  :func:`repro.core.upsample.upsample_constant`;
* **blocked time analysis** (Ousterhout et al., NSDI'15) — the paper's
  closest prior art for issue-impact estimation.  BTA estimates how much
  faster an application could run if tasks never blocked on a blockable
  resource, by replaying with the blocked time removed.  Crucially, BTA
  sees only *blocking*: it cannot detect consumable-resource bottlenecks
  (a saturated CPU, a capped Exact share) or workload imbalance — the gap
  Grade10 closes.

:func:`blocked_time_analysis` implements BTA on the same replay simulator
Grade10's detectors use, so the two are directly comparable: the
``bench_ablation_baselines`` benchmark shows BTA recovering only the
GC/queue blocking fraction of what Grade10's full analysis finds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .phases import ExecutionModel
from .simulation import ReplaySimulator
from .traces import ExecutionTrace

__all__ = ["BlockedTimeResult", "blocked_time_analysis"]

_EPS = 1e-12


@dataclass
class BlockedTimeResult:
    """Per-resource and overall optimistic estimates from blocked time."""

    baseline_makespan: float
    #: makespan with blocking removed on *all* resources at once
    optimistic_makespan: float
    #: per blocking resource: makespan with only that resource's blocking removed
    per_resource: dict[str, float] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        if self.baseline_makespan <= _EPS:
            return 0.0
        return (self.baseline_makespan - self.optimistic_makespan) / self.baseline_makespan

    def improvement_for(self, resource: str) -> float:
        """Fractional improvement from removing one resource's blocking."""
        if self.baseline_makespan <= _EPS or resource not in self.per_resource:
            return 0.0
        return (self.baseline_makespan - self.per_resource[resource]) / self.baseline_makespan


def blocked_time_analysis(
    trace: ExecutionTrace,
    model: ExecutionModel | None = None,
    *,
    simulator: ReplaySimulator | None = None,
) -> BlockedTimeResult:
    """Ousterhout-style blocked time analysis on an execution trace.

    For each blocking resource, every phase's duration is reduced by the
    time it spent blocked on that resource, and the trace is replayed.
    The ``optimistic_makespan`` removes blocking on every resource at once
    (the classic "what if tasks never blocked" upper bound).
    """
    sim = simulator or ReplaySimulator(trace, model)
    baseline = sim.baseline().makespan

    resources = sorted({ev.resource for inst in trace.instances() for ev in inst.blocking})

    per_resource: dict[str, float] = {}
    for resource in resources:
        durations: dict[str, float] = {}
        for inst in trace.instances():
            blocked = inst.blocked_time(resource)
            if blocked > 0.0:
                durations[inst.instance_id] = max(inst.duration - blocked, 0.0)
        per_resource[resource] = sim.simulate(durations).makespan

    all_durations: dict[str, float] = {}
    for inst in trace.instances():
        blocked = sum(e - s for s, e in inst.blocked_intervals())
        if blocked > 0.0:
            all_durations[inst.instance_id] = max(inst.duration - blocked, 0.0)
    optimistic = sim.simulate(all_durations).makespan

    return BlockedTimeResult(
        baseline_makespan=baseline,
        optimistic_makespan=optimistic,
        per_resource=per_resource,
    )
