"""Critical-path analysis over the replayed execution.

A complement to the issue detectors: the *critical path* is the chain of
phase instances whose durations determine the makespan — shortening any
phase off the path cannot speed the application up at all.  Combined with
Grade10's per-phase bottleneck attribution, it tells an analyst not just
*what* is bottlenecked but *which* bottlenecked phases are worth fixing
first.

The analysis runs on the same dependency graph as the replay simulator
(precedence from the execution model's sibling DAGs, same-location
sequencing, barrier semantics), so its makespan equals the replay baseline
by construction.  Wait phases are elastic there, so they never appear on
the path — the path runs through real work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .phases import ExecutionModel
from .simulation import ReplaySimulator
from .traces import ExecutionTrace, PhaseInstance

__all__ = ["CriticalPath", "critical_path"]

_EPS = 1e-12


@dataclass
class CriticalPath:
    """The chain of leaf phase instances that determines the makespan."""

    instances: list[PhaseInstance] = field(default_factory=list)
    makespan: float = 0.0

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self):
        return iter(self.instances)

    @property
    def total_duration(self) -> float:
        return sum(i.duration for i in self.instances)

    def time_by_phase_type(self) -> dict[str, float]:
        """Critical-path seconds per phase type, descending."""
        out: dict[str, float] = {}
        for inst in self.instances:
            out[inst.phase_path] = out.get(inst.phase_path, 0.0) + inst.duration
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def time_by_machine(self) -> dict[str, float]:
        """Critical-path seconds per machine (``?`` for unlocated phases)."""
        out: dict[str, float] = {}
        for inst in self.instances:
            key = inst.machine or "?"
            out[key] = out.get(key, 0.0) + inst.duration
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def fraction_of_makespan(self) -> float:
        """How much of the makespan the path's work explains (≤ 1.0;
        the remainder is elastic wait time between path segments)."""
        if self.makespan <= _EPS:
            return 0.0
        return min(self.total_duration / self.makespan, 1.0)


def critical_path(
    trace: ExecutionTrace,
    model: ExecutionModel | None = None,
    *,
    simulator: ReplaySimulator | None = None,
) -> CriticalPath:
    """Compute the critical path of a run's replayed schedule.

    Walks backwards from the instance that finishes last, at each step
    moving to the predecessor that *binds* the current instance's start
    time (the one whose simulated end equals it).  Gaps (an instance that
    starts strictly after every predecessor ends — only possible for
    sources) terminate the walk.
    """
    sim = simulator or ReplaySimulator(trace, model)
    schedule = sim.baseline()
    if not schedule.end:
        return CriticalPath()

    wait_paths = sim._wait_paths

    last_id = max(schedule.end, key=lambda iid: (schedule.end[iid], iid))
    path: list[PhaseInstance] = []
    current: str | None = last_id
    visited: set[str] = set()
    while current is not None and current not in visited:
        visited.add(current)
        inst = trace[current]
        if inst.phase_path not in wait_paths and inst.duration > _EPS:
            path.append(inst)
        start = schedule.start[current]
        binding: str | None = None
        for pid in sim._preds.get(current, ()):  # predecessors are leaf ids
            end = schedule.end.get(pid)
            if end is not None and abs(end - start) <= 1e-9 and start > _EPS:
                if binding is None or schedule.end[pid] > schedule.end[binding]:
                    binding = pid
        current = binding

    path.reverse()
    return CriticalPath(instances=path, makespan=schedule.makespan)
