"""Burstiness analysis of resource consumption.

Coarse-grained monitoring averages away bursts — the paper names missed
burstiness as a core failure of low-frequency collection (§III-D2) and
lists burstiness among the issue classes Grade10 captures and prior DAG
characterizations do not (Table I).  Once the upsampler has reconstructed
timeslice-granular consumption, burstiness becomes measurable:

* **peak-to-mean ratio** — how far short spikes exceed the average;
* **coefficient of variation** — overall variability of the rate;
* **burst fraction** — share of total consumption that happens inside
  slices above a threshold multiple of the mean.

:func:`burstiness_of` scores one series; :func:`analyze_burstiness`
scores every upsampled resource and compares against what the raw coarse
measurements would report — the *recovered burstiness* is exactly the
information that upsampling added.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .profile import PerformanceProfile
from .timeline import TimeGrid
from .traces import ResourceTrace

__all__ = ["BurstinessScore", "burstiness_of", "analyze_burstiness"]

_EPS = 1e-12


@dataclass(frozen=True)
class BurstinessScore:
    """Burstiness statistics of one rate series."""

    peak_to_mean: float
    coefficient_of_variation: float
    burst_fraction: float  # consumption share in slices > threshold x mean

    @property
    def is_bursty(self) -> bool:
        """Heuristic: spiky series (peak ≥ 2x mean with real variability)."""
        return self.peak_to_mean >= 2.0 and self.coefficient_of_variation >= 0.5


def burstiness_of(rates: np.ndarray, *, burst_threshold: float = 2.0) -> BurstinessScore:
    """Score one per-slice rate series."""
    rates = np.asarray(rates, dtype=np.float64)
    mean = float(rates.mean()) if rates.size else 0.0
    if mean <= _EPS:
        return BurstinessScore(1.0, 0.0, 0.0)
    peak = float(rates.max())
    cov = float(rates.std() / mean)
    bursty_mass = float(rates[rates > burst_threshold * mean].sum())
    total = float(rates.sum())
    return BurstinessScore(
        peak_to_mean=peak / mean,
        coefficient_of_variation=cov,
        burst_fraction=bursty_mass / total if total > _EPS else 0.0,
    )


def _coarse_rates(resource_trace: ResourceTrace, resource: str, grid: TimeGrid) -> np.ndarray:
    """The rate series the raw coarse measurements imply (constant per window)."""
    out = np.zeros(grid.n_slices)
    for m in resource_trace.measurements(resource):
        lo, hi = grid.slice_range(m.t_start, m.t_end)
        out[lo:hi] = m.value
    return out


def analyze_burstiness(
    profile: PerformanceProfile, *, burst_threshold: float = 2.0
) -> dict[str, tuple[BurstinessScore, BurstinessScore]]:
    """Per resource: (upsampled score, raw-coarse score).

    The gap between the two is the burstiness the coarse monitoring had
    averaged away and the demand-guided upsampling recovered.
    """
    out: dict[str, tuple[BurstinessScore, BurstinessScore]] = {}
    for name in profile.upsampled.resources():
        fine = burstiness_of(profile.upsampled[name].rate, burst_threshold=burst_threshold)
        coarse = burstiness_of(
            _coarse_rates(profile.resource_trace, name, profile.grid),
            burst_threshold=burst_threshold,
        )
        out[name] = (fine, coarse)
    return out
