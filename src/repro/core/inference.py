"""Automatic inference of attribution rules from traces (paper §V).

The paper's models are hand-tuned by an expert over about a week per
framework; its *ongoing work* section proposes inferring attribution rules
from data instead.  This module implements that extension:

Given an execution trace and monitoring data for a run (ideally a
calibration run with reasonably fine monitoring), we estimate, per
(phase type, resource), the per-instance consumption coefficient by
**non-negative least squares**:

* each measurement window contributes one equation
  ``measured_total(w) = Σ_pt coeff_pt × active_instance_seconds_pt(w)``,
  where the sum ranges over phase types and the activity accounts for
  blocking events;
* solving NNLS over all windows yields per-instance rates ``coeff_pt ≥ 0``;
* coefficients are classified into the paper's three rule kinds:

  - ``coeff ≈ 0``                → :class:`~repro.core.rules.NoneRule`,
  - a *stable* coefficient (the per-window residuals attributable to the
    type are small relative to its contribution) → an
    :class:`~repro.core.rules.ExactRule` with proportion ``coeff/capacity``,
  - otherwise a :class:`~repro.core.rules.VariableRule` whose weight is the
    coefficient normalized by the smallest inferred coefficient on the
    resource (relative demands are all Variable rules express).

Resources are grouped by *class* (the prefix before ``@``): per-machine
instances of the same class share one inferred rule, matching how experts
write rules once per framework, and multiplying the effective sample count.

The result is a :class:`~repro.core.rules.RuleMatrix` that can be passed to
:class:`~repro.core.profile.Grade10` exactly like a hand-written one; the
``bench_ablation_inference`` benchmark shows it recovering most of the
tuned model's upsampling accuracy with no expert input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import nnls

from .resources import ResourceModel
from .rules import ExactRule, NoneRule, Rule, RuleMatrix, VariableRule
from .timeline import TimeGrid, rasterize_intervals
from .traces import ExecutionTrace, ResourceTrace

__all__ = ["InferredRule", "InferenceResult", "infer_rules"]

_EPS = 1e-9


@dataclass(frozen=True)
class InferredRule:
    """One inferred (phase type, resource class) cell with diagnostics."""

    phase_path: str
    resource_class: str
    coefficient: float  # per-instance consumption rate, resource units
    stability: float  # in [0,1]: 1 = perfectly stable (Exact-like)
    rule: Rule


@dataclass
class InferenceResult:
    """All inferred rules plus the assembled matrix."""

    rules: RuleMatrix
    cells: list[InferredRule] = field(default_factory=list)
    residual: float = 0.0  # overall relative NNLS residual, in [0, 1+]

    def cell(self, phase_path: str, resource_class: str) -> InferredRule:
        """Look up one inferred cell (raises ``KeyError`` if absent)."""
        for c in self.cells:
            if c.phase_path == phase_path and c.resource_class == resource_class:
                return c
        raise KeyError(f"no inferred cell for ({phase_path!r}, {resource_class!r})")


def _resource_class(name: str) -> str:
    return name.split("@", 1)[0]


def _scope_of(name: str) -> str | None:
    if "@" in name:
        return name.split("@", 1)[1]
    return None


def infer_rules(
    trace: ExecutionTrace,
    resource_trace: ResourceTrace,
    resources: ResourceModel,
    *,
    none_threshold: float = 0.02,
    exact_stability: float = 0.85,
    min_windows: int = 4,
) -> InferenceResult:
    """Infer an attribution-rule matrix from one calibration run.

    Parameters
    ----------
    none_threshold:
        Coefficients below this fraction of the resource capacity collapse
        to :class:`NoneRule`.
    exact_stability:
        Minimum stability score for a coefficient to become an
        :class:`ExactRule`; less stable cells become Variable.
    min_windows:
        Resource classes with fewer measurement windows than this are left
        at the implicit rule (not enough evidence).
    """
    # A fine helper grid for computing activity overlap with windows.
    grid = trace.grid(max(trace.makespan / 2000.0, 1e-6))

    # Activity per (phase type, machine-scope) on the helper grid.
    # Phases attributable at each slice, grouped by type; scoped per machine
    # so per-machine resources see only local activity.
    activity: dict[tuple[str, str | None], np.ndarray] = {}
    for inst, frac in trace.attributable_instances(grid):
        key = (inst.phase_path, inst.machine)
        if key not in activity:
            activity[key] = np.zeros(grid.n_slices)
        activity[key] += frac

    result_rules = RuleMatrix()
    cells: list[InferredRule] = []
    total_res_norm: list[float] = []

    # Group measured resources by class.
    by_class: dict[str, list[str]] = {}
    for name in resource_trace.measured_resources():
        if name in resources.consumable:
            by_class.setdefault(_resource_class(name), []).append(name)

    for rclass, members in sorted(by_class.items()):
        capacity = max(resources.capacity_of(m) for m in members)
        phase_types = sorted({pt for pt, _ in activity})
        rows: list[np.ndarray] = []
        targets: list[float] = []
        for member in members:
            scope = _scope_of(member)
            for m in resource_trace.measurements(member):
                lo, hi = grid.slice_range(m.t_start, m.t_end)
                if hi <= lo:
                    continue
                row = np.empty(len(phase_types))
                for k, pt in enumerate(phase_types):
                    # Activity of this type on this machine (plus unscoped
                    # phases, which may run anywhere).
                    act = np.zeros(hi - lo)
                    for (p, mach), arr in activity.items():
                        if p == pt and (mach == scope or mach is None or scope is None):
                            act += arr[lo:hi]
                    row[k] = act.sum() * grid.slice_duration
                rows.append(row)
                targets.append(m.total)
        if len(rows) < min_windows:
            continue

        a = np.asarray(rows)
        b = np.asarray(targets)
        coeffs, rnorm = nnls(a, b)
        scale = np.linalg.norm(b)
        total_res_norm.append(rnorm / scale if scale > 0 else 0.0)

        # Stability: how well a constant per-instance rate explains each
        # type's contribution — measured by refitting residuals with the
        # type's column scaled.  A cheap proxy: per-window implied rate
        # variance for windows dominated by this type.
        pred = a @ coeffs
        resid = b - pred
        positive = coeffs > none_threshold * capacity
        min_coeff = coeffs[positive].min() if positive.any() else 1.0

        for k, pt in enumerate(phase_types):
            coeff = float(coeffs[k])
            if coeff <= none_threshold * capacity:
                rule: Rule = NoneRule()
                stability = 1.0
            else:
                # Windows where this type provides most of the predicted
                # consumption judge the constant-rate hypothesis.
                contrib = a[:, k] * coeff
                dominated = contrib > 0.5 * np.maximum(pred, _EPS)
                if dominated.any():
                    rel = np.abs(resid[dominated]) / np.maximum(pred[dominated], _EPS)
                    stability = float(np.clip(1.0 - rel.mean(), 0.0, 1.0))
                else:
                    stability = 0.0
                if stability >= exact_stability and coeff <= capacity + _EPS:
                    rule = ExactRule(min(coeff / capacity, 1.0))
                else:
                    rule = VariableRule(max(coeff / min_coeff, _EPS))
            pattern = f"{rclass}@{{machine}}" if any("@" in m for m in members) else rclass
            result_rules.set_rule(pt, pattern, rule)
            cells.append(
                InferredRule(
                    phase_path=pt,
                    resource_class=rclass,
                    coefficient=coeff,
                    stability=stability,
                    rule=rule,
                )
            )

    return InferenceResult(
        rules=result_rules,
        cells=cells,
        residual=float(np.mean(total_res_norm)) if total_res_norm else 0.0,
    )
