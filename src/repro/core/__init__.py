"""Grade10 core: models, traces, attribution, bottlenecks, and issues.

This package is the paper's primary contribution — a framework that turns
coarse monitoring data plus fine-grained execution logs into a
timeslice-granular, per-phase performance profile, and mines that profile
for resource bottlenecks and performance issues.

Typical use::

    from repro.core import Grade10, ExecutionModel, ResourceModel, RuleMatrix

    model = ExecutionModel("my-framework")
    model.add_phase("/Load")
    model.add_phase("/Execute", after="Load")

    resources = ResourceModel("my-cluster")
    resources.add_consumable("cpu@node0", capacity=16, unit="cores")

    rules = RuleMatrix()
    rules.set_exact("/Execute", "cpu@*", 1.0)

    g10 = Grade10(model, resources, rules)
    profile = g10.characterize(execution_trace, resource_trace)
"""

from .attribution import AttributionResult, ResourceAttribution, attribute
from .bottlenecks import (
    Bottleneck,
    BottleneckKind,
    BottleneckReport,
    find_bottlenecks,
)
from .demand import DemandEntry, DemandEstimate, ResourceDemand, estimate_demand
from .baselines import BlockedTimeResult, blocked_time_analysis
from .burstiness import BurstinessScore, analyze_burstiness, burstiness_of
from .recommendations import Recommendation, recommend, render_recommendations
from .skew import GroupSkew, SkewReport, decompose_imbalance, imbalance_timeline
from .validation import ValidationReport, Violation, validate_trace
from .model_io import load_models, save_models
from .critical_path import CriticalPath, critical_path
from .diff import PhaseDelta, ProfileDiff, compare_profiles, diff_to_dict, render_diff
from .drilldown import WindowView, drill_down, drill_into_instance
from .export import profile_to_dict, write_profile_json
from .hierarchy import PhaseSummary, render_phase_tree, summarize
from .inference import InferenceResult, InferredRule, infer_rules
from .invariants import INVARIANTS, InvariantReport, InvariantViolation, check_profile
from .issues import (
    IssueReport,
    PerformanceIssue,
    detect_bottleneck_issues,
    detect_imbalance_issues,
    detect_issues,
)
from .outliers import OutlierGroup, OutlierPhase, OutlierReport, find_outliers
from .phases import ExecutionModel, PhaseType, parent_path, split_path
from .profile import PROFILE_BACKENDS, Grade10, PerformanceProfile
from .incremental import (
    DEFAULT_WINDOW_SLICES,
    IncrementalProfile,
    LiveBottleneck,
    WindowSummary,
)
from .report import render_report
from .resources import BlockingResource, ConsumableResource, ResourceModel
from .rules import ExactRule, NoneRule, Rule, RuleMatrix, VariableRule
from .simulation import (
    ReplaySimulator,
    SimulationError,
    SimulationResult,
    UnknownInstanceError,
)
from .timeline import TimeGrid, interval_slice_overlap, rasterize_intervals
from .traces import (
    BlockingEvent,
    ExecutionTrace,
    PhaseInstance,
    ResourceMeasurement,
    ResourceTrace,
)
from .upsample import (
    UpsampledResource,
    UpsampledTrace,
    relative_sampling_error,
    upsample,
    upsample_constant,
)

__all__ = [
    "AttributionResult",
    "ResourceAttribution",
    "attribute",
    "Bottleneck",
    "BottleneckKind",
    "BottleneckReport",
    "find_bottlenecks",
    "DemandEntry",
    "DemandEstimate",
    "ResourceDemand",
    "estimate_demand",
    "BlockedTimeResult",
    "blocked_time_analysis",
    "BurstinessScore",
    "analyze_burstiness",
    "burstiness_of",
    "Recommendation",
    "recommend",
    "render_recommendations",
    "GroupSkew",
    "SkewReport",
    "decompose_imbalance",
    "imbalance_timeline",
    "ValidationReport",
    "Violation",
    "validate_trace",
    "load_models",
    "save_models",
    "CriticalPath",
    "critical_path",
    "PhaseDelta",
    "ProfileDiff",
    "compare_profiles",
    "diff_to_dict",
    "render_diff",
    "WindowView",
    "drill_down",
    "drill_into_instance",
    "profile_to_dict",
    "write_profile_json",
    "PhaseSummary",
    "render_phase_tree",
    "summarize",
    "InferenceResult",
    "InferredRule",
    "infer_rules",
    "INVARIANTS",
    "InvariantReport",
    "InvariantViolation",
    "check_profile",
    "IssueReport",
    "PerformanceIssue",
    "detect_bottleneck_issues",
    "detect_imbalance_issues",
    "detect_issues",
    "OutlierGroup",
    "OutlierPhase",
    "OutlierReport",
    "find_outliers",
    "ExecutionModel",
    "PhaseType",
    "parent_path",
    "split_path",
    "Grade10",
    "PerformanceProfile",
    "PROFILE_BACKENDS",
    "DEFAULT_WINDOW_SLICES",
    "IncrementalProfile",
    "LiveBottleneck",
    "WindowSummary",
    "render_report",
    "BlockingResource",
    "ConsumableResource",
    "ResourceModel",
    "ExactRule",
    "NoneRule",
    "Rule",
    "RuleMatrix",
    "VariableRule",
    "ReplaySimulator",
    "SimulationError",
    "SimulationResult",
    "UnknownInstanceError",
    "TimeGrid",
    "interval_slice_overlap",
    "rasterize_intervals",
    "BlockingEvent",
    "ExecutionTrace",
    "PhaseInstance",
    "ResourceMeasurement",
    "ResourceTrace",
    "UpsampledResource",
    "UpsampledTrace",
    "relative_sampling_error",
    "upsample",
    "upsample_constant",
]
