"""Profile comparison: quantify the effect of a change between two runs.

The paper's debugging story ends where most performance work begins again:
a fix gets made, and someone must verify it helped.  This module compares
two characterized runs of the same workload — before and after a change —
and reports

* the makespan delta,
* per-phase-type total-duration deltas (which operations got faster),
* per-resource bottleneck-time deltas (which bottlenecks shrank),
* outlier-statistics deltas (did the stragglers go away?).

Phase matching is by *type*, not instance, so the two runs may differ in
instance counts (e.g. a fix that changes iteration counts still compares).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO

from typing import Any

from .profile import PerformanceProfile

__all__ = [
    "PhaseDelta",
    "ProfileDiff",
    "compare_profiles",
    "diff_to_dict",
    "render_diff",
]

_EPS = 1e-12


@dataclass(frozen=True)
class PhaseDelta:
    """Duration change of one phase type between two runs."""

    phase_path: str
    before_total: float
    after_total: float
    before_instances: int
    after_instances: int

    @property
    def delta(self) -> float:
        return self.after_total - self.before_total

    @property
    def ratio(self) -> float:
        if self.before_total <= _EPS:
            return float("inf") if self.after_total > _EPS else 1.0
        return self.after_total / self.before_total


@dataclass
class ProfileDiff:
    """Structured comparison of two profiles of the same workload."""

    makespan_before: float
    makespan_after: float
    phases: list[PhaseDelta] = field(default_factory=list)
    bottleneck_before: dict[str, float] = field(default_factory=dict)
    bottleneck_after: dict[str, float] = field(default_factory=dict)
    outlier_fraction_before: float = 0.0
    outlier_fraction_after: float = 0.0
    worst_slowdown_before: float = 1.0
    worst_slowdown_after: float = 1.0

    @property
    def speedup(self) -> float:
        if self.makespan_after <= _EPS:
            return float("inf")
        return self.makespan_before / self.makespan_after

    def phase(self, phase_path: str) -> PhaseDelta:
        """The delta of one phase type (``KeyError`` if absent from both runs)."""
        for p in self.phases:
            if p.phase_path == phase_path:
                return p
        raise KeyError(f"no delta for phase {phase_path!r}")

    def improved_phases(self, *, min_delta: float = 0.0) -> list[PhaseDelta]:
        """Phase types whose total duration shrank, most-improved first."""
        return sorted(
            (p for p in self.phases if p.delta < -min_delta), key=lambda p: p.delta
        )

    def regressed_phases(self, *, min_delta: float = 0.0) -> list[PhaseDelta]:
        """Phase types whose total duration grew, most-regressed first."""
        return sorted(
            (p for p in self.phases if p.delta > min_delta), key=lambda p: -p.delta
        )


def _phase_totals(profile: PerformanceProfile) -> dict[str, tuple[float, int]]:
    out: dict[str, tuple[float, int]] = {}
    for inst in profile.execution_trace.instances():
        total, count = out.get(inst.phase_path, (0.0, 0))
        out[inst.phase_path] = (total + inst.duration, count + 1)
    return out


def compare_profiles(before: PerformanceProfile, after: PerformanceProfile) -> ProfileDiff:
    """Compare two profiles of the same workload (before → after)."""
    tb, ta = _phase_totals(before), _phase_totals(after)
    phases = [
        PhaseDelta(
            phase_path=path,
            before_total=tb.get(path, (0.0, 0))[0],
            after_total=ta.get(path, (0.0, 0))[0],
            before_instances=tb.get(path, (0.0, 0))[1],
            after_instances=ta.get(path, (0.0, 0))[1],
        )
        for path in sorted(set(tb) | set(ta))
    ]

    def worst_slowdown(profile: PerformanceProfile) -> float:
        slowdowns = profile.outliers.slowdowns()
        return max(slowdowns) if slowdowns else 1.0

    return ProfileDiff(
        makespan_before=before.makespan,
        makespan_after=after.makespan,
        phases=phases,
        bottleneck_before=before.bottlenecks.bottleneck_time_by_resource(),
        bottleneck_after=after.bottlenecks.bottleneck_time_by_resource(),
        outlier_fraction_before=before.outliers.affected_fraction,
        outlier_fraction_after=after.outliers.affected_fraction,
        worst_slowdown_before=worst_slowdown(before),
        worst_slowdown_after=worst_slowdown(after),
    )


def diff_to_dict(diff: ProfileDiff) -> dict[str, Any]:
    """Flatten a diff into JSON-serializable structures.

    Infinite ratios (a phase type absent before) are emitted as ``None``
    so the result always survives strict JSON serialization.
    """

    def finite(x: float) -> float | None:
        return x if x == x and abs(x) != float("inf") else None

    return {
        "makespan": {
            "before": diff.makespan_before,
            "after": diff.makespan_after,
            "speedup": finite(diff.speedup),
        },
        "phases": [
            {
                "phase": p.phase_path,
                "before_total": p.before_total,
                "after_total": p.after_total,
                "before_instances": p.before_instances,
                "after_instances": p.after_instances,
                "delta": p.delta,
                "ratio": finite(p.ratio),
            }
            for p in diff.phases
        ],
        "bottleneck_time_by_resource": {
            r: {
                "before": diff.bottleneck_before.get(r, 0.0),
                "after": diff.bottleneck_after.get(r, 0.0),
            }
            for r in sorted(set(diff.bottleneck_before) | set(diff.bottleneck_after))
        },
        "outliers": {
            "affected_fraction_before": diff.outlier_fraction_before,
            "affected_fraction_after": diff.outlier_fraction_after,
            "worst_slowdown_before": diff.worst_slowdown_before,
            "worst_slowdown_after": diff.worst_slowdown_after,
        },
    }


def render_diff(diff: ProfileDiff, *, top: int = 8) -> str:
    """Human-readable before/after comparison."""
    out = StringIO()
    out.write("Profile comparison (before → after)\n")
    out.write("===================================\n")
    out.write(
        f"makespan: {diff.makespan_before:.3f}s → {diff.makespan_after:.3f}s "
        f"({diff.speedup:.2f}x)\n"
    )
    improved = diff.improved_phases()[:top]
    if improved:
        out.write("\nimproved phases:\n")
        for p in improved:
            out.write(
                f"  {p.phase_path}: {p.before_total:.3f}s → {p.after_total:.3f}s "
                f"({p.ratio:.2f}x)\n"
            )
    regressed = diff.regressed_phases()[:top]
    if regressed:
        out.write("\nregressed phases:\n")
        for p in regressed:
            out.write(
                f"  {p.phase_path}: {p.before_total:.3f}s → {p.after_total:.3f}s "
                f"({p.ratio:.2f}x)\n"
            )
    resources = sorted(set(diff.bottleneck_before) | set(diff.bottleneck_after))
    if resources:
        out.write("\nbottleneck time by resource:\n")
        for r in resources:
            b = diff.bottleneck_before.get(r, 0.0)
            a = diff.bottleneck_after.get(r, 0.0)
            out.write(f"  {r}: {b:.3f}s → {a:.3f}s\n")
    out.write(
        f"\noutlier-affected steps: {diff.outlier_fraction_before:.0%} → "
        f"{diff.outlier_fraction_after:.0%}; "
        f"worst step slowdown: {diff.worst_slowdown_before:.2f}x → "
        f"{diff.worst_slowdown_after:.2f}x\n"
    )
    return out.getvalue()
