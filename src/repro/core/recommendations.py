"""Actionable recommendations from a performance profile.

The paper phrases Grade10's output as advice: a saturated resource means
"providing more of R3 would help both phases"; a capped Exact phase means
"configure P2 to use 100 % of R3 instead of 80 %"; heavy Gather imbalance
means "improving load balancing during Gather could reduce the runtime by
up to 42.7 %".  This module renders the detector outputs in exactly that
voice, ranked by their optimistic impact, so the profile ends in a
prioritized to-do list rather than a pile of matrices.

Recommendation kinds:

* ``provision``   — a saturated consumable resource: add capacity or reduce
  demand (from saturation bottlenecks + the bottleneck-removal estimate);
* ``reconfigure`` — an Exact-capped phase: raise its allowance (from
  exact-cap bottlenecks);
* ``unblock``     — heavy blocking on a blocking resource: tune the service
  (GC sizing, queue capacity) (from blocking bottlenecks);
* ``rebalance``   — imbalanced concurrent phases: better partitioning or
  scheduling (from imbalance issues);
* ``investigate`` — same-worker stragglers: a runtime defect, not a
  distribution problem (from the outlier report + skew decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bottlenecks import BottleneckKind
from .profile import PerformanceProfile

__all__ = ["Recommendation", "recommend", "render_recommendations"]

_EPS = 1e-12


@dataclass(frozen=True)
class Recommendation:
    """One piece of ranked advice derived from the profile."""

    kind: str
    subject: str
    advice: str
    impact: float  # estimated fractional makespan reduction (0 when unknown)

    def __str__(self) -> str:
        pct = f" (up to {self.impact:.1%} of the makespan)" if self.impact > 0 else ""
        return f"[{self.kind}] {self.advice}{pct}"


def recommend(profile: PerformanceProfile, *, min_impact: float = 0.01) -> list[Recommendation]:
    """Derive ranked recommendations from a characterized run."""
    recs: list[Recommendation] = []
    issue_by_subject = {i.subject: i.improvement for i in profile.issues}

    # --- provision: saturated consumable resources. ---------------------- #
    saturated_resources: dict[str, float] = {}
    for b in profile.bottlenecks.for_kind(BottleneckKind.SATURATION):
        saturated_resources[b.resource] = saturated_resources.get(b.resource, 0.0) + b.duration
    for resource, bottleneck_time in sorted(saturated_resources.items(), key=lambda kv: -kv[1]):
        impact = issue_by_subject.get(resource, 0.0)
        recs.append(
            Recommendation(
                kind="provision",
                subject=resource,
                advice=(
                    f"{resource} saturates for {bottleneck_time:.2f} phase-seconds; "
                    f"providing more of it, or reducing demand on it, would help every "
                    f"phase competing for it"
                ),
                impact=impact,
            )
        )

    # --- reconfigure: Exact-capped phases. ------------------------------- #
    capped: dict[tuple[str, str], float] = {}
    for b in profile.bottlenecks.for_kind(BottleneckKind.EXACT_CAP):
        key = (b.phase_path, b.resource)
        capped[key] = capped.get(key, 0.0) + b.duration
    for (phase_path, resource), dur in sorted(capped.items(), key=lambda kv: -kv[1]):
        recs.append(
            Recommendation(
                kind="reconfigure",
                subject=phase_path,
                advice=(
                    f"{phase_path} runs at its configured share of {resource} for "
                    f"{dur:.2f} phase-seconds while the resource has headroom; raising "
                    f"its allowance would likely improve performance"
                ),
                impact=issue_by_subject.get(resource, 0.0),
            )
        )

    # --- unblock: blocking resources. ------------------------------------ #
    blocking: dict[str, float] = {}
    for b in profile.bottlenecks.for_kind(BottleneckKind.BLOCKING):
        blocking[b.resource] = blocking.get(b.resource, 0.0) + b.duration
    for resource, dur in sorted(blocking.items(), key=lambda kv: -kv[1]):
        recs.append(
            Recommendation(
                kind="unblock",
                subject=resource,
                advice=(
                    f"phases spend {dur:.2f}s blocked on {resource}; tuning the "
                    f"underlying service (heap sizing for GC, capacity for queues) "
                    f"would recover part of it"
                ),
                impact=issue_by_subject.get(resource, 0.0),
            )
        )

    # --- rebalance: imbalance issues. ------------------------------------ #
    for issue in profile.issues.by_kind("imbalance"):
        recs.append(
            Recommendation(
                kind="rebalance",
                subject=issue.subject,
                advice=(
                    f"work in {issue.subject} phases is imbalanced; better "
                    f"partitioning or finer-grained scheduling could reduce the "
                    f"makespan by {issue.makespan_reduction:.2f}s"
                ),
                impact=issue.improvement,
            )
        )

    # --- investigate: same-worker stragglers. ----------------------------- #
    affected = profile.outliers.affected_groups()
    if affected:
        worst = max(affected, key=lambda g: g.slowdown)
        recs.append(
            Recommendation(
                kind="investigate",
                subject=worst.phase_path,
                advice=(
                    f"{len(affected)} step(s) contain same-worker stragglers "
                    f"(worst: a {worst.phase_path} step slowed {worst.slowdown:.2f}x "
                    f"by one thread); this pattern points at a runtime defect "
                    f"rather than workload distribution"
                ),
                impact=max(0.0, 1.0 - 1.0 / worst.slowdown) * 0.1,
            )
        )

    ranked = sorted(recs, key=lambda r: -r.impact)
    return [r for r in ranked if r.impact >= min_impact or r.kind == "investigate"]


def render_recommendations(recs: list[Recommendation]) -> str:
    """Numbered plain-text rendering."""
    if not recs:
        return "No recommendations above threshold.\n"
    lines = ["Recommendations (ranked by optimistic impact)",
             "----------------------------------------------"]
    for k, rec in enumerate(recs, 1):
        lines.append(f"{k}. {rec}")
    return "\n".join(lines) + "\n"
