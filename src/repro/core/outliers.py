"""Straggler/outlier detection among concurrent phases (paper §IV-D).

The paper's PowerGraph case study finds that within a set of concurrent
same-type phases (worker threads of one Gather step) some threads take far
longer than their siblings *on the same worker* — the signature of the
synchronization bug where one thread keeps draining a late message stream
while the others idle at a barrier.

This module detects such outliers: within each concurrent group, a phase is
an outlier when its duration exceeds ``threshold ×`` the median duration of
its same-worker siblings.  The estimated slowdown of the group is the ratio
between the slowest phase overall and the slowest non-outlier phase — i.e.
how much longer the step took because of the outliers, since a step ends
only when its slowest phase finishes.

Following the paper, only *non-trivial* groups (longest phase above a
minimum duration, 1 s by default) enter the aggregate statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from .phases import ExecutionModel
from .traces import ExecutionTrace, PhaseInstance

__all__ = ["OutlierPhase", "OutlierGroup", "OutlierReport", "find_outliers"]

#: Default multiple of the same-worker median above which a phase is an outlier.
DEFAULT_THRESHOLD = 1.5
#: Default minimum longest-phase duration for a group to be "non-trivial".
DEFAULT_MIN_PHASE_DURATION = 1.0


@dataclass(frozen=True)
class OutlierPhase:
    """One straggler phase and how far it deviates from its peers."""

    instance_id: str
    duration: float
    peer_median: float

    @property
    def factor(self) -> float:
        """Duration as a multiple of the same-worker median."""
        if self.peer_median <= 0.0:
            return float("inf")
        return self.duration / self.peer_median


@dataclass
class OutlierGroup:
    """Outlier analysis of one concurrent same-type phase group."""

    phase_path: str
    parent_id: str | None
    n_phases: int
    longest: float
    longest_without_outliers: float
    outliers: list[OutlierPhase] = field(default_factory=list)

    @property
    def has_outliers(self) -> bool:
        return bool(self.outliers)

    @property
    def slowdown(self) -> float:
        """Estimated slowdown of the step caused by the outliers.

        The step's duration is its slowest phase; without the outliers it
        would have been the slowest non-outlier phase.
        """
        if self.longest_without_outliers <= 0.0:
            return 1.0
        return self.longest / self.longest_without_outliers


@dataclass
class OutlierReport:
    """Outlier analysis across all concurrent groups of a run."""

    groups: list[OutlierGroup] = field(default_factory=list)
    min_phase_duration: float = DEFAULT_MIN_PHASE_DURATION

    def __iter__(self):
        return iter(self.groups)

    def nontrivial_groups(self) -> list[OutlierGroup]:
        """Groups whose longest phase exceeds the minimum duration."""
        return [g for g in self.groups if g.longest >= self.min_phase_duration]

    def affected_groups(self) -> list[OutlierGroup]:
        """Non-trivial groups containing at least one outlier."""
        return [g for g in self.nontrivial_groups() if g.has_outliers]

    @property
    def affected_fraction(self) -> float:
        """Fraction of non-trivial groups with at least one outlier (§IV-D's 20 %)."""
        nt = self.nontrivial_groups()
        if not nt:
            return 0.0
        return len(self.affected_groups()) / len(nt)

    def slowdowns(self) -> list[float]:
        """Slowdown factors of the affected non-trivial groups."""
        return [g.slowdown for g in self.affected_groups()]


def _worker_key(inst: PhaseInstance) -> tuple[str | None, str | None]:
    return (inst.machine, inst.worker)


def find_outliers(
    trace: ExecutionTrace,
    model: ExecutionModel | None = None,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    min_phase_duration: float = DEFAULT_MIN_PHASE_DURATION,
    min_group_size: int = 3,
) -> OutlierReport:
    """Detect straggler phases in concurrent same-type groups.

    Only groups whose phase type is marked ``concurrent`` in the model are
    examined (all groups when no model is given).  ``min_group_size`` is the
    smallest peer set for which a median is meaningful.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1.0, got {threshold}")
    report = OutlierReport(min_phase_duration=min_phase_duration)
    for (parent_id, phase_path), insts in sorted(
        trace.concurrent_groups().items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
    ):
        if len(insts) < min_group_size:
            continue
        if model is not None:
            try:
                if not model[phase_path].concurrent:
                    continue
            except KeyError:
                continue

        # Per-worker medians: the paper distinguishes cross-worker imbalance
        # (poor partitioning) from same-worker outliers (the sync bug); the
        # outlier test is against same-worker peers.
        by_worker: dict[tuple[str | None, str | None], list[PhaseInstance]] = {}
        for inst in insts:
            by_worker.setdefault(_worker_key(inst), []).append(inst)

        outliers: list[OutlierPhase] = []
        for peers in by_worker.values():
            if len(peers) < min_group_size:
                continue
            med = median(p.duration for p in peers)
            if med <= 0.0:
                continue
            for inst in peers:
                if inst.duration > threshold * med:
                    outliers.append(OutlierPhase(inst.instance_id, inst.duration, med))

        outlier_ids = {o.instance_id for o in outliers}
        longest = max(i.duration for i in insts)
        non_outliers = [i.duration for i in insts if i.instance_id not in outlier_ids]
        longest_wo = max(non_outliers) if non_outliers else longest
        report.groups.append(
            OutlierGroup(
                phase_path=phase_path,
                parent_id=parent_id,
                n_phases=len(insts),
                longest=longest,
                longest_without_outliers=longest_wo,
                outliers=sorted(outliers, key=lambda o: o.factor, reverse=True),
            )
        )
    return report
