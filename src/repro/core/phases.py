"""Execution models: hierarchical DAGs of phase types (paper §III-B).

An *execution model* describes the kinds of operations ("phases") a graph
processing framework performs when executing any workload, independent of a
particular run.  It is a nested, hierarchical directed acyclic graph:

* nodes are :class:`PhaseType`\\ s — single logical operations;
* directed edges give the order of execution among siblings;
* a node may itself contain a DAG of child phase types, decomposing a
  high-level phase into lower-level ones.

For example a Giraph application is three sequential top-level phases —
``Load``, ``Execute``, ``Store`` — where ``Execute`` decomposes into repeated
``Superstep`` phases, each of which contains ``Prepare``, ``Compute`` (with
per-thread ``ComputeThread`` children) and ``Barrier``.

Phase types are identified by *paths* like ``"/Execute/Superstep/Compute"``.
A concrete run instantiates phase types into :class:`~repro.core.traces.PhaseInstance`\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PhaseType", "ExecutionModel", "PATH_SEPARATOR", "split_path", "parent_path"]

PATH_SEPARATOR = "/"


def split_path(path: str) -> tuple[str, ...]:
    """Split a phase path into its component names.

    The root path ``"/"`` splits into an empty tuple.
    """
    if not path.startswith(PATH_SEPARATOR):
        raise ValueError(f"phase path must start with '{PATH_SEPARATOR}': {path!r}")
    parts = tuple(p for p in path.split(PATH_SEPARATOR) if p)
    return parts


def parent_path(path: str) -> str:
    """Path of the parent phase type (``"/"`` for top-level phases)."""
    parts = split_path(path)
    if not parts:
        raise ValueError("root path has no parent")
    return PATH_SEPARATOR + PATH_SEPARATOR.join(parts[:-1])


@dataclass
class PhaseType:
    """A node in the execution-model hierarchy.

    Parameters
    ----------
    name:
        Name of this phase type, unique among its siblings.  Must not
        contain the path separator.
    repeatable:
        Whether a single parent instance may contain multiple sequential
        instances of this phase type (e.g. supersteps of an iterative
        algorithm).
    concurrent:
        Whether multiple instances of this phase type may be active at the
        same time under one parent instance (e.g. per-worker or per-thread
        phases).  Concurrent same-type phases are the unit of the paper's
        imbalance analysis (§III-F).
    balanceable:
        Whether the work of concurrent instances is interchangeable for the
        imbalance analysis.  Pure wait phases (barrier waits) are
        concurrent but carry no redistributable work; set this to ``False``
        to exclude them.
    wait:
        Whether instances of this type merely wait on other phases (barrier
        waits).  The replay simulator treats wait phases as *elastic*: they
        contribute dependencies but no duration, since their recorded length
        is an artifact of the synchronization being replayed.
    description:
        Free-form documentation shown in reports.
    """

    name: str
    repeatable: bool = False
    concurrent: bool = False
    balanceable: bool = True
    wait: bool = False
    description: str = ""
    children: dict[str, "PhaseType"] = field(default_factory=dict)
    # Successor names among siblings: edges of the (sibling-level) DAG.
    successors: dict[str, set[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if PATH_SEPARATOR in self.name:
            raise ValueError(f"phase name may not contain {PATH_SEPARATOR!r}: {self.name!r}")
        if not self.name:
            raise ValueError("phase name may not be empty")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_child(self, child: "PhaseType", after: str | tuple[str, ...] = ()) -> "PhaseType":
        """Add ``child`` under this phase, optionally ordered after siblings.

        ``after`` names sibling phase types that must complete before the
        child can start.  Returns the child for chaining.
        """
        if child.name in self.children:
            raise ValueError(f"duplicate child phase {child.name!r} under {self.name!r}")
        preds = (after,) if isinstance(after, str) else tuple(after)
        for pred in preds:
            if pred not in self.children:
                raise ValueError(f"unknown predecessor {pred!r} for child {child.name!r}")
        self.children[child.name] = child
        self.successors.setdefault(child.name, set())
        for pred in preds:
            self.successors.setdefault(pred, set()).add(child.name)
        return child

    def child(
        self,
        name: str,
        *,
        after: str | tuple[str, ...] = (),
        repeatable: bool = False,
        concurrent: bool = False,
        balanceable: bool = True,
        wait: bool = False,
        description: str = "",
    ) -> "PhaseType":
        """Create and add a child phase type in one call."""
        return self.add_child(
            PhaseType(
                name,
                repeatable=repeatable,
                concurrent=concurrent,
                balanceable=balanceable,
                wait=wait,
                description=description,
            ),
            after=after,
        )

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def walk(self, prefix: str = "") -> Iterator[tuple[str, "PhaseType"]]:
        """Depth-first iteration over ``(path, phase_type)`` of all descendants."""
        for name, child in self.children.items():
            path = f"{prefix}{PATH_SEPARATOR}{name}"
            yield path, child
            yield from child.walk(path)

    def topological_child_order(self) -> list[str]:
        """Children names in a topological order of the sibling DAG.

        Raises :class:`ValueError` when the sibling edges contain a cycle.
        """
        indeg = {name: 0 for name in self.children}
        for _, succs in self.successors.items():
            for s in succs:
                indeg[s] += 1
        ready = sorted(name for name, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for s in sorted(self.successors.get(name, ())):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self.children):
            raise ValueError(f"cycle in sibling ordering under phase {self.name!r}")
        return order


class ExecutionModel:
    """A complete hierarchical execution model for one framework.

    The model owns an implicit root; top-level phases are children of the
    root.  Instances are looked up by path, e.g.
    ``model["/Execute/Superstep/Compute"]``.
    """

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._root = PhaseType("__root__")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> PhaseType:
        """The implicit root node (its children are the top-level phases)."""
        return self._root

    def add_phase(
        self,
        path: str,
        *,
        after: str | tuple[str, ...] = (),
        repeatable: bool = False,
        concurrent: bool = False,
        balanceable: bool = True,
        wait: bool = False,
        description: str = "",
    ) -> PhaseType:
        """Add a phase type at ``path``; all ancestors must already exist."""
        parts = split_path(path)
        if not parts:
            raise ValueError("cannot add the root phase")
        node = self._root
        for part in parts[:-1]:
            if part not in node.children:
                raise ValueError(f"ancestor {part!r} of {path!r} does not exist")
            node = node.children[part]
        return node.child(
            parts[-1],
            after=after,
            repeatable=repeatable,
            concurrent=concurrent,
            balanceable=balanceable,
            wait=wait,
            description=description,
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __getitem__(self, path: str) -> PhaseType:
        node = self._root
        for part in split_path(path):
            try:
                node = node.children[part]
            except KeyError:
                raise KeyError(f"no phase type at path {path!r}") from None
        return node

    def __contains__(self, path: str) -> bool:
        try:
            self[path]
        except (KeyError, ValueError):
            return False
        return True

    def paths(self) -> list[str]:
        """All phase-type paths in depth-first order."""
        return [path for path, _ in self._root.walk()]

    def leaf_paths(self) -> list[str]:
        """Paths of phase types without children."""
        return [path for path, node in self._root.walk() if not node.children]

    def depth_of(self, path: str) -> int:
        """Nesting depth of ``path`` (top-level phases have depth 1)."""
        return len(split_path(path))

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check all sibling DAGs are acyclic; raise :class:`ValueError` otherwise."""
        self._root.topological_child_order()
        for _, node in self._root.walk():
            node.topological_child_order()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionModel({self.name!r}, phases={len(self.paths())})"
