"""Human-readable rendering of performance profiles (paper Fig. 1, step 10).

Turns the structured results of the pipeline into plain-text reports an
analyst can read in a terminal: bottleneck summaries, issue rankings, and
per-phase resource usage tables.  The heavier ASCII timeline/bar rendering
lives in :mod:`repro.viz`; this module focuses on tabular summaries.
"""

from __future__ import annotations

from io import StringIO

from .bottlenecks import BottleneckKind
from .profile import PerformanceProfile

__all__ = ["render_report", "render_bottleneck_summary", "render_issue_summary"]


def _fmt_seconds(s: float) -> str:
    if s >= 100.0:
        return f"{s:,.0f}s"
    if s >= 1.0:
        return f"{s:.2f}s"
    return f"{s * 1000.0:.1f}ms"


def render_bottleneck_summary(profile: PerformanceProfile) -> str:
    """Per-resource bottleneck totals, split by detection kind."""
    out = StringIO()
    out.write("Resource bottlenecks\n")
    out.write("--------------------\n")
    rows: list[tuple[str, str, float]] = []
    for kind in BottleneckKind:
        per_resource: dict[str, float] = {}
        for b in profile.bottlenecks.for_kind(kind):
            per_resource[b.resource] = per_resource.get(b.resource, 0.0) + b.duration
        for res, dur in sorted(per_resource.items(), key=lambda kv: -kv[1]):
            rows.append((res, kind.value, dur))
    if not rows:
        out.write("  (none detected)\n")
        return out.getvalue()
    width = max(len(r[0]) for r in rows)
    for res, kind, dur in rows:
        out.write(f"  {res:<{width}}  {kind:<10}  {_fmt_seconds(dur):>10}\n")
    return out.getvalue()


def render_issue_summary(profile: PerformanceProfile, *, top: int = 10) -> str:
    """The highest-impact performance issues with optimistic estimates."""
    out = StringIO()
    out.write("Performance issues (optimistic impact)\n")
    out.write("--------------------------------------\n")
    issues = profile.issues.top(top)
    if not issues:
        out.write("  (none above threshold)\n")
        return out.getvalue()
    for issue in issues:
        out.write(
            f"  [{issue.kind}] {issue.subject}: "
            f"-{_fmt_seconds(issue.makespan_reduction)} ({issue.improvement:.1%})\n"
        )
    return out.getvalue()


def render_outlier_summary(profile: PerformanceProfile) -> str:
    """Straggler statistics over non-trivial concurrent groups."""
    out = StringIO()
    out.write("Outlier phases (stragglers)\n")
    out.write("---------------------------\n")
    rep = profile.outliers
    nontrivial = rep.nontrivial_groups()
    affected = rep.affected_groups()
    out.write(
        f"  non-trivial groups: {len(nontrivial)}, affected: {len(affected)} "
        f"({rep.affected_fraction:.0%})\n"
    )
    for g in sorted(affected, key=lambda g: g.slowdown, reverse=True)[:10]:
        worst = g.outliers[0]
        out.write(
            f"  {g.phase_path}: slowdown {g.slowdown:.2f}x "
            f"(worst thread {worst.factor:.2f}x its worker median)\n"
        )
    return out.getvalue()


def render_utilization_heatmap(profile: PerformanceProfile, *, width: int = 64) -> str:
    """Per-resource utilization over time (machine × time heatmap)."""
    from ..viz import heatmap  # local import: viz depends on nothing heavy

    out = StringIO()
    out.write("Resource utilization over time\n")
    out.write("------------------------------\n")
    rows = {
        name: profile.upsampled[name].utilization for name in profile.upsampled.resources()
    }
    if not rows:
        out.write("  (no monitored resources)\n")
        return out.getvalue()
    out.write(heatmap(rows, max_value=1.0, width=width))
    return out.getvalue()


def render_report(profile: PerformanceProfile, *, extended: bool = False) -> str:
    """Full plain-text report for one characterized run.

    With ``extended=True``, also includes the hierarchical phase tree and
    the per-resource utilization heatmap.
    """
    out = StringIO()
    out.write("Grade10 performance profile\n")
    out.write("===========================\n")
    out.write(f"makespan: {_fmt_seconds(profile.makespan)}, ")
    out.write(f"timeslice: {profile.grid.slice_duration * 1000:.0f}ms, ")
    out.write(f"slices: {profile.grid.n_slices}, ")
    out.write(f"phase instances: {len(profile.execution_trace)}\n\n")
    out.write(render_bottleneck_summary(profile))
    out.write("\n")
    out.write(render_issue_summary(profile))
    out.write("\n")
    out.write(render_outlier_summary(profile))
    if extended:
        from .hierarchy import render_phase_tree, summarize
        from .recommendations import recommend, render_recommendations

        out.write("\n")
        out.write(render_utilization_heatmap(profile))
        out.write("\n")
        out.write(render_phase_tree(summarize(profile)))
        out.write("\n")
        out.write(render_recommendations(recommend(profile)))
    return out.getvalue()
