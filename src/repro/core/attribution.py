"""Attribution of resource consumption to phases (paper §III-D3).

The final step of the attribution pipeline: within each timeslice, split the
upsampled consumption of each resource over the phase instances active in
that slice.

For each resource and timeslice, independently:

1. phases with an **Exact** rule receive consumption proportionally to
   their exact demand, never more than that demand, and never more in total
   than the slice's estimated consumption;
2. the remaining consumption is divided proportionally to the **relative
   (Variable)** demands of all active variable phases;
3. consumption left over when no variable phase is active is recorded as
   *unattributed* (it shows up in reports as a model gap).

The result is conceptually a 3-D array — phase × resource × timeslice — as
in the paper's Figure 2(f).  We store it as per-resource matrices over the
attributable instances plus an index, and expose hierarchical roll-up:
the usage of an inner phase is its own direct usage plus that of all
descendants (§III-B's upward propagation).

The per-slice computation is fully vectorized over slices; Python loops run
only over resources and demand entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from .demand import DemandEstimate
from .timeline import TimeGrid
from .traces import ExecutionTrace, PhaseInstance
from .upsample import UpsampledTrace

__all__ = ["ResourceAttribution", "AttributionResult", "attribute"]

_EPS = 1e-12


@dataclass
class ResourceAttribution:
    """Per-phase consumption of one resource, timeslice-granular.

    ``usage`` has one row per attributable instance (indexed by
    ``instance_ids``) and one column per timeslice, in resource units.
    """

    resource: str
    capacity: float
    instance_ids: list[str]
    usage: np.ndarray  # (n_instances, n_slices)
    unattributed: np.ndarray  # (n_slices,)
    demand: np.ndarray  # (n_instances, n_slices) — estimated per-instance demand
    is_exact: np.ndarray  # (n_instances,) bool

    def total_per_slice(self) -> np.ndarray:
        """Attributed plus unattributed consumption per slice.

        By construction this equals the upsampled consumption rate — the
        conservation invariant :mod:`repro.core.invariants` enforces.
        """
        if self.usage.size == 0:
            return self.unattributed.copy()
        return self.usage.sum(axis=0) + self.unattributed

    def row_of(self, instance_id: str) -> int:
        """Row index of an instance in :attr:`usage` (``KeyError`` if absent)."""
        try:
            return self.instance_ids.index(instance_id)
        except ValueError:
            raise KeyError(
                f"instance {instance_id!r} has no direct attribution on {self.resource!r}"
            ) from None


class AttributionResult:
    """Full output of the resource attribution process for one run."""

    def __init__(
        self,
        grid: TimeGrid,
        trace: ExecutionTrace,
        per_resource: dict[str, ResourceAttribution],
    ) -> None:
        self.grid = grid
        self.trace = trace
        self.per_resource = per_resource
        # instance_id -> {resource -> row}
        self._index: dict[str, dict[str, int]] = {}
        for rname, ra in per_resource.items():
            for row, iid in enumerate(ra.instance_ids):
                self._index.setdefault(iid, {})[rname] = row

    def resources(self) -> list[str]:
        """Names of the attributed resources."""
        return list(self.per_resource)

    def __getitem__(self, resource: str) -> ResourceAttribution:
        return self.per_resource[resource]

    def __contains__(self, resource: str) -> bool:
        return resource in self.per_resource

    # ------------------------------------------------------------------ #
    # Usage queries
    # ------------------------------------------------------------------ #
    def direct_usage(self, instance: PhaseInstance | str, resource: str) -> np.ndarray:
        """Per-slice usage directly attributed to this instance (no roll-up)."""
        iid = instance.instance_id if isinstance(instance, PhaseInstance) else instance
        ra = self.per_resource[resource]
        row = self._index.get(iid, {}).get(resource)
        if row is None:
            return np.zeros(self.grid.n_slices)
        return ra.usage[row]

    def usage(self, instance: PhaseInstance | str, resource: str) -> np.ndarray:
        """Per-slice usage including all descendant instances (roll-up)."""
        inst = self.trace[instance] if isinstance(instance, str) else instance
        total = self.direct_usage(inst, resource).copy()
        for desc in self.trace.descendants_of(inst):
            total += self.direct_usage(desc, resource)
        return total

    def phase_type_usage(self, phase_path: str, resource: str) -> np.ndarray:
        """Per-slice usage summed over all instances of one phase type (rolled up)."""
        total = np.zeros(self.grid.n_slices)
        for inst in self.trace.instances(phase_path):
            total += self.usage(inst, resource)
        return total

    def total_usage(self, instance: PhaseInstance | str, resource: str) -> float:
        """Total consumption (units × seconds) attributed to an instance."""
        return float(self.usage(instance, resource).sum() * self.grid.slice_duration)

    def demand_of(self, instance: PhaseInstance | str, resource: str) -> np.ndarray:
        """Per-slice estimated demand of this instance (no roll-up)."""
        iid = instance.instance_id if isinstance(instance, PhaseInstance) else instance
        ra = self.per_resource[resource]
        row = self._index.get(iid, {}).get(resource)
        if row is None:
            return np.zeros(self.grid.n_slices)
        return ra.demand[row]


def attribute(
    upsampled: UpsampledTrace,
    demand: DemandEstimate,
    trace: ExecutionTrace,
) -> AttributionResult:
    """Attribute upsampled consumption to phases, per resource and timeslice."""
    with obs.span("attribute", n_resources=len(upsampled.resources())):
        return _attribute(upsampled, demand, trace)


def _attribute(
    upsampled: UpsampledTrace,
    demand: DemandEstimate,
    trace: ExecutionTrace,
) -> AttributionResult:
    grid = upsampled.grid
    per_resource: dict[str, ResourceAttribution] = {}
    for name in upsampled.resources():
        rdemand = demand[name]
        consumption = upsampled[name].rate  # (n_slices,)
        entries = rdemand.entries
        n = len(entries)
        if n == 0:
            per_resource[name] = ResourceAttribution(
                resource=name,
                capacity=rdemand.capacity,
                instance_ids=[],
                usage=np.zeros((0, grid.n_slices)),
                unattributed=consumption.copy(),
                demand=np.zeros((0, grid.n_slices)),
                is_exact=np.zeros(0, dtype=bool),
            )
            continue

        dem = np.stack([e.demand() for e in entries])  # (n, n_slices)
        exact_mask = np.array([e.is_exact for e in entries], dtype=bool)

        usage = np.zeros_like(dem)

        # Step 1 — Exact phases: proportional to demand, capped at demand,
        # total capped at the slice's consumption.
        exact_dem = dem[exact_mask]
        if exact_dem.size:
            exact_total = exact_dem.sum(axis=0)
            scale = np.ones(grid.n_slices)
            over = exact_total > _EPS
            scale[over] = np.minimum(1.0, consumption[over] / exact_total[over])
            usage[exact_mask] = exact_dem * scale
        remainder = consumption - usage.sum(axis=0)
        np.clip(remainder, 0.0, None, out=remainder)

        # Step 2 — Variable phases: remainder proportional to weights.
        var_dem = dem[~exact_mask]
        if var_dem.size:
            var_total = var_dem.sum(axis=0)
            share = np.divide(
                remainder, var_total, out=np.zeros_like(remainder), where=var_total > _EPS
            )
            usage[~exact_mask] = var_dem * share
            remainder = remainder - np.where(var_total > _EPS, remainder, 0.0)

        per_resource[name] = ResourceAttribution(
            resource=name,
            capacity=rdemand.capacity,
            instance_ids=[e.instance.instance_id for e in entries],
            usage=usage,
            unattributed=remainder,
            demand=dem,
            is_exact=exact_mask,
        )
    return AttributionResult(grid=grid, trace=trace, per_resource=per_resource)
