"""Resource models: consumable and blocking resources (paper §III-B).

Grade10 uses "resource" broadly: hardware (CPU, network, storage), software
(locks, queues) and runtime services (garbage collection).  Two archetypes
are modeled:

* **Consumable resources** have a capacity.  Demand beyond capacity slows
  the workload down (e.g. CPU cores, NIC bandwidth).
* **Blocking resources** do not affect a phase while available, but block
  its execution while unavailable (e.g. a full message queue, a
  stop-the-world GC pause).  They are represented in traces as sequences of
  blocking events.

Resources are *per-instance*: each machine's CPU is a distinct resource
(``cpu@node1``).  The :class:`ResourceModel` is typically written once per
framework/infrastructure pair by a domain expert and reused across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceKind", "ConsumableResource", "BlockingResource", "ResourceModel"]


class ResourceKind:
    """String constants for the two resource archetypes."""

    CONSUMABLE = "consumable"
    BLOCKING = "blocking"


@dataclass(frozen=True)
class ConsumableResource:
    """A capacity-limited resource.

    Parameters
    ----------
    name:
        Unique identifier, conventionally ``kind@scope`` (e.g. ``cpu@node0``).
    capacity:
        Maximum sustainable consumption rate, in ``unit``\\ s.  For a CPU this
        is the number of cores; for a NIC, bytes/second.
    unit:
        Human-readable unit for reports.
    description:
        Free-form documentation.
    """

    name: str
    capacity: float
    unit: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if self.capacity <= 0.0:
            raise ValueError(f"capacity of {self.name!r} must be > 0, got {self.capacity}")

    @property
    def kind(self) -> str:
        return ResourceKind.CONSUMABLE


@dataclass(frozen=True)
class BlockingResource:
    """A resource that halts phases while unavailable.

    Blocking resources have no capacity; their effect on a run is fully
    described by the blocking events recorded in the resource trace.
    """

    name: str
    unit: str = "s"
    description: str = ""

    @property
    def kind(self) -> str:
        return ResourceKind.BLOCKING


class ResourceModel:
    """The set of resources available in a system under test."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._consumable: dict[str, ConsumableResource] = {}
        self._blocking: dict[str, BlockingResource] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_consumable(
        self, name: str, capacity: float, *, unit: str = "", description: str = ""
    ) -> ConsumableResource:
        """Register a consumable resource; names must be globally unique."""
        self._check_unique(name)
        res = ConsumableResource(name, capacity, unit, description)
        self._consumable[name] = res
        return res

    def add_blocking(self, name: str, *, unit: str = "s", description: str = "") -> BlockingResource:
        """Register a blocking resource; names must be globally unique."""
        self._check_unique(name)
        res = BlockingResource(name, unit, description)
        self._blocking[name] = res
        return res

    def _check_unique(self, name: str) -> None:
        if name in self._consumable or name in self._blocking:
            raise ValueError(f"duplicate resource name {name!r}")

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @property
    def consumable(self) -> dict[str, ConsumableResource]:
        return dict(self._consumable)

    @property
    def blocking(self) -> dict[str, BlockingResource]:
        return dict(self._blocking)

    def __getitem__(self, name: str) -> ConsumableResource | BlockingResource:
        if name in self._consumable:
            return self._consumable[name]
        if name in self._blocking:
            return self._blocking[name]
        raise KeyError(f"no resource named {name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._consumable or name in self._blocking

    def names(self) -> list[str]:
        """All resource names, consumables first, insertion-ordered."""
        return list(self._consumable) + list(self._blocking)

    def capacity_of(self, name: str) -> float:
        """Capacity of a consumable resource (raises for blocking resources)."""
        res = self[name]
        if not isinstance(res, ConsumableResource):
            raise TypeError(f"resource {name!r} is blocking and has no capacity")
        return res.capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceModel({self.name!r}, consumable={len(self._consumable)}, "
            f"blocking={len(self._blocking)})"
        )
