"""Resource demand estimation (paper §III-D1).

The first step of resource attribution: from the execution trace and the
attribution rules, estimate for every resource and every timeslice

* the **known (exact) demand** — the sum, over active phases with an
  :class:`~repro.core.rules.ExactRule`, of their exact demands, in absolute
  resource units;
* the **variable demand weight** — the sum of the relative weights of
  active phases with a :class:`~repro.core.rules.VariableRule`.

A phase contributes to a slice proportionally to the fraction of the slice
during which it is *active* (started, not ended, not blocked), so phases
whose boundaries do not align with the grid and phases interrupted by
blocking events are handled exactly.

The result of this step is consumed both by the upsampler (to split coarse
measurements over slices) and by the per-phase attribution step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .resources import ResourceModel
from .rules import ExactRule, NoneRule, RuleMatrix, VariableRule
from .timeline import TimeGrid
from .traces import ExecutionTrace, PhaseInstance

__all__ = ["DemandEntry", "ResourceDemand", "DemandEstimate", "estimate_demand"]


@dataclass(frozen=True)
class DemandEntry:
    """One attributable phase instance's demand on one resource.

    ``activity`` is the per-slice active fraction (in ``[0, 1]``);
    for Exact rules ``magnitude`` is the absolute demand rate
    (``proportion × capacity``), for Variable rules it is the relative
    weight.
    """

    instance: PhaseInstance
    is_exact: bool
    magnitude: float
    activity: np.ndarray

    def demand(self) -> np.ndarray:
        """Per-slice demand (absolute units for exact, weight for variable)."""
        return self.magnitude * self.activity


@dataclass
class ResourceDemand:
    """Per-slice demand decomposition for a single consumable resource."""

    resource: str
    capacity: float
    exact_total: np.ndarray
    variable_total: np.ndarray
    entries: list[DemandEntry] = field(default_factory=list)

    @property
    def exact_entries(self) -> list[DemandEntry]:
        return [e for e in self.entries if e.is_exact]

    @property
    def variable_entries(self) -> list[DemandEntry]:
        return [e for e in self.entries if not e.is_exact]

    def total_estimated_demand(self) -> np.ndarray:
        """Exact demand plus variable weights expressed in resource units.

        Variable weights have no intrinsic unit; following the untuned-model
        interpretation in the paper's Figure 3 we read one unit of weight as
        demand for one unit of the resource, capped at capacity.  This
        estimate is for reporting/plots; the upsampler uses the decomposed
        form.
        """
        return np.minimum(self.exact_total + self.variable_total, self.capacity)


@dataclass
class DemandEstimate:
    """Demand decomposition for all consumable resources on one grid."""

    grid: TimeGrid
    per_resource: dict[str, ResourceDemand]

    def __getitem__(self, resource: str) -> ResourceDemand:
        return self.per_resource[resource]

    def __contains__(self, resource: str) -> bool:
        return resource in self.per_resource

    def resources(self) -> list[str]:
        """Names of the resources with a demand decomposition."""
        return list(self.per_resource)


def estimate_demand(
    trace: ExecutionTrace,
    resources: ResourceModel,
    rules: RuleMatrix,
    grid: TimeGrid,
) -> DemandEstimate:
    """Build the timeslice-granular demand estimation matrix (§III-D1).

    Only *attributable* instances (those without concurrently active
    children, see :meth:`ExecutionTrace.iter_attributable_instances`)
    generate demand; inner phases are covered by the roll-up of their
    descendants.  Instances stream through one at a time — per-resource
    totals accumulate in instance order (so the sums are bit-identical to
    the historical resource-outer loop) without materializing the full
    attributable list up front.
    """
    consumable = resources.consumable
    per_resource: dict[str, ResourceDemand] = {
        name: ResourceDemand(
            resource=name,
            capacity=res.capacity,
            exact_total=np.zeros(grid.n_slices),
            variable_total=np.zeros(grid.n_slices),
            entries=[],
        )
        for name, res in consumable.items()
    }
    for inst, activity in trace.iter_attributable_instances(grid):
        for name, res in consumable.items():
            rule = rules.rule_for(inst, name)
            if isinstance(rule, NoneRule):
                continue
            rdemand = per_resource[name]
            if isinstance(rule, ExactRule):
                magnitude = rule.proportion * res.capacity
                entry = DemandEntry(inst, True, magnitude, activity)
                rdemand.exact_total += entry.demand()
            elif isinstance(rule, VariableRule):
                entry = DemandEntry(inst, False, rule.weight, activity)
                rdemand.variable_total += entry.demand()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown rule type {type(rule).__name__}")
            rdemand.entries.append(entry)
    for name, res in consumable.items():
        # Known demand can never exceed capacity: concurrent Exact phases
        # whose proportions sum past 100% contend for the same resource.
        np.minimum(
            per_resource[name].exact_total,
            res.capacity,
            out=per_resource[name].exact_total,
        )
    return DemandEstimate(grid=grid, per_resource=per_resource)
