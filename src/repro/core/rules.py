"""Resource attribution rules (paper §III-D1).

Attribution rules link the demand of phase types to resources.  They form a
conceptual matrix with a column per phase type and a row per resource; each
cell holds one of three rules:

* :class:`NoneRule` — the phase does not use the resource;
* :class:`ExactRule` — the phase has an exact demand, expressed as a
  proportion of the resource's capacity (e.g. one compute thread demands
  exactly ``1/#cores`` of a machine's CPU);
* :class:`VariableRule` — the phase may use as much of the resource as it
  can get, with an unknown but *relative* demand expressed as a weight
  (a phase with weight ``2`` is assumed to demand twice as much as a
  concurrent phase with weight ``1``).

When no rule matches a (phase, resource) pair, Grade10 assumes an implicit
``VariableRule(1.0)`` — exactly the untuned behaviour evaluated in the
paper's Figure 3(a) and the "not tuned" row of Table II.

Rules are written against phase-type *paths* and resource *name patterns*.
Since resources are per-machine instances (``cpu@node3``) while rules are
written once per framework, a pattern may reference attributes of the
concrete phase instance, e.g. ``cpu@{machine}`` expands using the instance's
machine before matching.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from .traces import PhaseInstance

__all__ = ["NoneRule", "ExactRule", "VariableRule", "Rule", "RuleMatrix", "IMPLICIT_RULE"]


@dataclass(frozen=True)
class NoneRule:
    """Phase does not use the resource at all."""

    kind: str = "none"


@dataclass(frozen=True)
class ExactRule:
    """Phase demands exactly ``proportion`` of the resource's capacity.

    ``proportion`` is a fraction in ``(0, 1]``: a demand of half the
    resource is ``ExactRule(0.5)``.
    """

    proportion: float
    kind: str = "exact"

    def __post_init__(self) -> None:
        if not 0.0 < self.proportion <= 1.0:
            raise ValueError(f"Exact proportion must be in (0, 1], got {self.proportion}")


@dataclass(frozen=True)
class VariableRule:
    """Phase uses the resource with unknown demand of relative ``weight``."""

    weight: float = 1.0
    kind: str = "variable"

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ValueError(f"Variable weight must be > 0, got {self.weight}")


Rule = Union[NoneRule, ExactRule, VariableRule]

#: Rule assumed when the matrix has no entry for a (phase, resource) pair.
IMPLICIT_RULE: Rule = VariableRule(1.0)


@dataclass(frozen=True)
class _RuleEntry:
    phase_path: str
    resource_pattern: str
    rule: Rule


class RuleMatrix:
    """An ordered collection of attribution rules.

    Later entries override earlier ones, so frameworks can declare a broad
    default (``set_default_rule``) and then refine specific cells.

    By default, only phase instances that have no *active* children are
    attributable (resource usage of inner phases is the roll-up of their
    descendants); this matches the hierarchical propagation of §III-B.
    """

    def __init__(self, *, implicit_rule: Rule = IMPLICIT_RULE) -> None:
        self._entries: list[_RuleEntry] = []
        self.implicit_rule = implicit_rule

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def set_rule(self, phase_path: str, resource_pattern: str, rule: Rule) -> "RuleMatrix":
        """Set the rule for phases of type ``phase_path`` on matching resources.

        ``phase_path`` may be an exact path or an ``fnmatch`` pattern
        (e.g. ``"/Execute/Superstep/*"``).  ``resource_pattern`` is an
        ``fnmatch`` pattern over resource names and may contain ``{attr}``
        placeholders resolved against the phase instance (``{machine}``,
        ``{worker}``, ``{thread}``).  Returns ``self`` for chaining.
        """
        self._entries.append(_RuleEntry(phase_path, resource_pattern, rule))
        return self

    def set_none(self, phase_path: str, resource_pattern: str) -> "RuleMatrix":
        """Shorthand for ``set_rule(..., NoneRule())``."""
        return self.set_rule(phase_path, resource_pattern, NoneRule())

    def set_exact(self, phase_path: str, resource_pattern: str, proportion: float) -> "RuleMatrix":
        """Shorthand for ``set_rule(..., ExactRule(proportion))``."""
        return self.set_rule(phase_path, resource_pattern, ExactRule(proportion))

    def set_variable(self, phase_path: str, resource_pattern: str, weight: float = 1.0) -> "RuleMatrix":
        """Shorthand for ``set_rule(..., VariableRule(weight))``."""
        return self.set_rule(phase_path, resource_pattern, VariableRule(weight))

    def set_default_rule(self, rule: Rule) -> "RuleMatrix":
        """Change the implicit rule used for unmatched (phase, resource) pairs."""
        self.implicit_rule = rule
        return self

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def rule_for(self, instance: "PhaseInstance", resource_name: str) -> Rule:
        """Resolve the rule applying to ``instance`` on ``resource_name``.

        The last matching entry wins; with no match, the implicit rule
        applies.
        """
        attrs = {
            "machine": instance.machine or "*",
            "worker": instance.worker or "*",
            "thread": instance.thread or "*",
        }
        chosen = self.implicit_rule
        for entry in self._entries:
            if not fnmatch.fnmatchcase(instance.phase_path, entry.phase_path):
                continue
            try:
                pattern = entry.resource_pattern.format(**attrs)
            except (KeyError, IndexError):
                raise ValueError(
                    f"unknown placeholder in resource pattern {entry.resource_pattern!r}"
                ) from None
            if fnmatch.fnmatchcase(resource_name, pattern):
                chosen = entry.rule
        return chosen

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuleMatrix(entries={len(self._entries)}, implicit={self.implicit_rule!r})"
