"""Model-trace conformance checking.

Execution models are written once by an expert; traces are produced by a
framework's instrumentation.  When the two drift apart — a renamed phase,
a log emitted under the wrong parent, overlapping instances of a
sequential phase type — attribution silently degrades (unknown phases get
the implicit rule; mis-parented phases skew the hierarchy roll-up).

:func:`validate_trace` checks a trace against a model and reports every
violation, so drift is caught loudly at ingest instead of quietly in the
numbers:

* **unknown-phase** — an instance's path has no phase type in the model;
* **wrong-parent** — an instance's parent instance is not of the parent
  phase type (instances of top-level types must have no parent);
* **ordering** — an instance started before a sibling-DAG predecessor
  instance ended;
* **overlap** — two instances of a non-``concurrent`` type under the same
  parent overlap in time;
* **repeat** — multiple sequential instances of a non-``repeatable`` type
  under one parent.

Violations are advisory (the pipeline runs regardless); severity is
encoded by kind so callers can choose what to enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .phases import ExecutionModel, parent_path, split_path
from .traces import ExecutionTrace, PhaseInstance

__all__ = ["Violation", "ValidationReport", "validate_trace"]

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Violation:
    """One conformance violation."""

    kind: str  # unknown-phase | wrong-parent | ordering | overlap | repeat
    instance_id: str
    message: str


@dataclass
class ValidationReport:
    """All violations found in one trace."""

    violations: list[Violation] = field(default_factory=list)

    def __iter__(self):
        return iter(self.violations)

    def __len__(self) -> int:
        return len(self.violations)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self, kind: str) -> list[Violation]:
        """Violations of one kind."""
        return [v for v in self.violations if v.kind == kind]

    def summary(self) -> dict[str, int]:
        """Violation counts per kind."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.kind] = out.get(v.kind, 0) + 1
        return out


def validate_trace(trace: ExecutionTrace, model: ExecutionModel) -> ValidationReport:
    """Check every instance of ``trace`` against ``model``."""
    report = ValidationReport()

    def add(kind: str, inst: PhaseInstance, message: str) -> None:
        report.violations.append(Violation(kind, inst.instance_id, message))

    # --- Path and parent conformance. ---------------------------------- #
    for inst in trace.instances():
        if inst.phase_path not in model:
            add("unknown-phase", inst, f"no phase type at {inst.phase_path!r}")
            continue
        expected_parent = parent_path(inst.phase_path) if split_path(inst.phase_path) else "/"
        if expected_parent == "/":
            if inst.parent_id is not None:
                add(
                    "wrong-parent",
                    inst,
                    f"top-level type {inst.phase_path!r} has parent {inst.parent_id!r}",
                )
        else:
            if inst.parent_id is None:
                add("wrong-parent", inst, f"{inst.phase_path!r} requires a parent instance")
            else:
                actual = trace[inst.parent_id].phase_path
                if actual != expected_parent:
                    add(
                        "wrong-parent",
                        inst,
                        f"parent is {actual!r}, expected {expected_parent!r}",
                    )

    # --- Sibling constraints per (parent, type). ------------------------ #
    for (parent_id, phase_path), insts in trace.concurrent_groups().items():
        if phase_path not in model:
            continue
        node = model[phase_path]
        insts = sorted(insts, key=lambda i: (i.t_start, i.t_end))

        if not node.concurrent:
            for a, b in zip(insts, insts[1:]):
                if b.t_start < a.t_end - _TOLERANCE:
                    add(
                        "overlap",
                        b,
                        f"overlaps sibling {a.instance_id!r} of non-concurrent type",
                    )
        if not node.repeatable and not node.concurrent and len(insts) > 1:
            add(
                "repeat",
                insts[1],
                f"{len(insts)} instances of non-repeatable type under one parent",
            )

        # Ordering against sibling-DAG predecessors.
        parent_type = "/" if parent_id is None else trace[parent_id].phase_path
        parent_node = model.root if parent_type == "/" else (
            model[parent_type] if parent_type in model else None
        )
        if parent_node is None:
            continue
        name = phase_path.rsplit("/", 1)[-1]
        pred_names = {
            pred for pred, succs in parent_node.successors.items() if name in succs
        }
        if not pred_names:
            continue
        siblings = trace.children_of(parent_id)
        pred_paths = {
            (parent_type.rstrip("/") if parent_type != "/" else "") + "/" + p
            for p in pred_names
        }
        pred_end = max(
            (s.t_end for s in siblings if s.phase_path in pred_paths), default=None
        )
        if pred_end is None:
            continue
        for inst in insts:
            if inst.t_start < pred_end - _TOLERANCE:
                # Per-machine pipelines may legitimately start before other
                # machines' predecessors end; only flag when the instance
                # starts before its own location's predecessors end.
                local_end = max(
                    (
                        s.t_end
                        for s in siblings
                        if s.phase_path in pred_paths and s.machine == inst.machine
                    ),
                    default=None,
                )
                bound = local_end if local_end is not None else pred_end
                if inst.t_start < bound - _TOLERANCE:
                    add(
                        "ordering",
                        inst,
                        f"starts at {inst.t_start:.6f} before predecessor end {bound:.6f}",
                    )
    return report
