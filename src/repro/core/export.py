"""JSON export of performance profiles.

Profiles hold numpy arrays and object graphs; downstream tooling (plotting
notebooks, dashboards, regression tracking) wants a stable, serializable
summary.  :func:`profile_to_dict` flattens a profile into plain dicts and
lists; :func:`write_profile_json` persists it.

The export is a *summary*, not a lossless dump: per-slice matrices are
reduced to per-phase-type and per-resource totals plus the per-slice
utilization series of each resource (which is small and what plots need).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..ioutils import atomic_write_text
from .bottlenecks import BottleneckKind
from .profile import PerformanceProfile

__all__ = ["profile_to_dict", "write_profile_json"]


def profile_to_dict(profile: PerformanceProfile, *, series: bool = True) -> dict[str, Any]:
    """Flatten a profile into JSON-serializable structures.

    With ``series=False``, the per-slice utilization arrays are omitted
    (totals only), which keeps exports of long runs tiny.
    """
    grid = profile.grid
    trace = profile.execution_trace

    phase_types: dict[str, dict[str, Any]] = {}
    for inst in trace.instances():
        agg = phase_types.setdefault(
            inst.phase_path,
            {"instances": 0, "total_duration": 0.0, "blocked_time": 0.0},
        )
        agg["instances"] += 1
        agg["total_duration"] += inst.duration
        agg["blocked_time"] += sum(iv[1] - iv[0] for iv in inst.blocked_intervals())

    resources: dict[str, dict[str, Any]] = {}
    for name in profile.upsampled.resources():
        ur = profile.upsampled[name]
        entry: dict[str, Any] = {
            "capacity": ur.capacity,
            "total_consumption": float(ur.rate.sum() * grid.slice_duration),
            "peak_utilization": float(ur.utilization.max()) if ur.rate.size else 0.0,
            "unexplained_consumption": float(ur.unexplained.sum() * grid.slice_duration),
        }
        if series:
            entry["utilization"] = [round(float(u), 6) for u in ur.utilization]
        resources[name] = entry

    bottlenecks = [
        {
            "kind": b.kind.value,
            "instance": b.instance_id,
            "phase": b.phase_path,
            "resource": b.resource,
            "duration": b.duration,
        }
        for b in profile.bottlenecks
    ]
    bottleneck_totals = {
        kind.value: {
            res: dur
            for res, dur in sorted(
                _totals_by_resource(profile, kind).items(), key=lambda kv: -kv[1]
            )
        }
        for kind in BottleneckKind
    }

    issues = [
        {
            "kind": i.kind,
            "subject": i.subject,
            "makespan_reduction": i.makespan_reduction,
            "improvement": i.improvement,
            "affected_instances": len(i.affected_instances),
        }
        for i in profile.issues.top(len(profile.issues.issues))
    ]

    outliers = {
        "nontrivial_groups": len(profile.outliers.nontrivial_groups()),
        "affected_groups": len(profile.outliers.affected_groups()),
        "affected_fraction": profile.outliers.affected_fraction,
        "slowdowns": profile.outliers.slowdowns(),
    }

    return {
        "makespan": profile.makespan,
        "grid": {
            "t0": grid.t0,
            "slice_duration": grid.slice_duration,
            "n_slices": grid.n_slices,
        },
        "phase_types": phase_types,
        "resources": resources,
        "bottlenecks": bottlenecks,
        "bottleneck_totals": bottleneck_totals,
        "issues": issues,
        "baseline_makespan": profile.issues.baseline_makespan,
        "outliers": outliers,
    }


def _totals_by_resource(profile: PerformanceProfile, kind: BottleneckKind) -> dict[str, float]:
    out: dict[str, float] = {}
    for b in profile.bottlenecks.for_kind(kind):
        out[b.resource] = out.get(b.resource, 0.0) + b.duration
    return out


def write_profile_json(
    profile: PerformanceProfile, path: str | Path, *, series: bool = True
) -> None:
    """Serialize a profile summary to a JSON file.

    Published atomically (temp file + ``os.replace``): an interrupted
    ``analyze`` leaves the previous export — or no file — in place, never
    a truncated, unloadable JSON.
    """
    atomic_write_text(path, json.dumps(profile_to_dict(profile, series=series), indent=2))
