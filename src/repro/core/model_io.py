"""Serialization of expert models to/from JSON.

Execution models, resource models, and rule matrices are written once per
framework and reused by many users (paper §III-B) — which means they need
a durable, shareable format.  This module round-trips all three through
plain JSON documents, so a framework's model can live in its repository as
a config file and be loaded without writing Python.

Schema (one document holds any subset of the three):

.. code-block:: json

   {
     "execution_model": {
       "name": "giraph-sim",
       "phases": [
         {"path": "/Load"},
         {"path": "/Execute", "after": ["Load"]},
         {"path": "/Execute/Superstep", "repeatable": true},
         {"path": "/Execute/Superstep/Compute", "concurrent": true}
       ]
     },
     "resource_model": {
       "name": "cluster",
       "consumable": [{"name": "cpu@m0", "capacity": 16, "unit": "cores"}],
       "blocking": [{"name": "gc@m0"}]
     },
     "rules": {
       "implicit": {"kind": "variable", "weight": 1.0},
       "entries": [
         {"phase": "/Execute/Superstep/Compute", "resource": "cpu@{machine}",
          "kind": "exact", "proportion": 0.0625}
       ]
     }
   }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .phases import ExecutionModel, parent_path, split_path
from .resources import ResourceModel
from .rules import ExactRule, NoneRule, Rule, RuleMatrix, VariableRule

__all__ = [
    "execution_model_to_dict",
    "execution_model_from_dict",
    "resource_model_to_dict",
    "resource_model_from_dict",
    "rules_to_dict",
    "rules_from_dict",
    "save_models",
    "load_models",
]


# ---------------------------------------------------------------------- #
# Execution model
# ---------------------------------------------------------------------- #


def execution_model_to_dict(model: ExecutionModel) -> dict[str, Any]:
    """Serialize an execution model to the documented JSON schema."""
    phases: list[dict[str, Any]] = []
    # Reconstruct each phase's predecessors from the parent's successor map.
    for path, node in model.root.walk():
        parts = split_path(path)
        parent = model.root if len(parts) == 1 else model[parent_path(path)]
        preds = sorted(
            pred for pred, succs in parent.successors.items() if node.name in succs
        )
        entry: dict[str, Any] = {"path": path}
        if preds:
            entry["after"] = preds
        for flag in ("repeatable", "concurrent", "wait"):
            if getattr(node, flag):
                entry[flag] = True
        if not node.balanceable:
            entry["balanceable"] = False
        if node.description:
            entry["description"] = node.description
        phases.append(entry)
    return {"name": model.name, "description": model.description, "phases": phases}


def execution_model_from_dict(data: dict[str, Any]) -> ExecutionModel:
    """Rebuild (and validate) an execution model from its JSON form."""
    model = ExecutionModel(data["name"], data.get("description", ""))
    for entry in data.get("phases", ()):
        model.add_phase(
            entry["path"],
            after=tuple(entry.get("after", ())),
            repeatable=entry.get("repeatable", False),
            concurrent=entry.get("concurrent", False),
            balanceable=entry.get("balanceable", True),
            wait=entry.get("wait", False),
            description=entry.get("description", ""),
        )
    model.validate()
    return model


# ---------------------------------------------------------------------- #
# Resource model
# ---------------------------------------------------------------------- #


def resource_model_to_dict(model: ResourceModel) -> dict[str, Any]:
    """Serialize a resource model to the documented JSON schema."""
    return {
        "name": model.name,
        "description": model.description,
        "consumable": [
            {"name": r.name, "capacity": r.capacity, "unit": r.unit,
             "description": r.description}
            for r in model.consumable.values()
        ],
        "blocking": [
            {"name": r.name, "unit": r.unit, "description": r.description}
            for r in model.blocking.values()
        ],
    }


def resource_model_from_dict(data: dict[str, Any]) -> ResourceModel:
    """Rebuild a resource model from its JSON form."""
    model = ResourceModel(data["name"], data.get("description", ""))
    for r in data.get("consumable", ()):
        model.add_consumable(
            r["name"], r["capacity"], unit=r.get("unit", ""),
            description=r.get("description", ""),
        )
    for r in data.get("blocking", ()):
        model.add_blocking(r["name"], unit=r.get("unit", "s"),
                           description=r.get("description", ""))
    return model


# ---------------------------------------------------------------------- #
# Rule matrix
# ---------------------------------------------------------------------- #


def _rule_to_dict(rule: Rule) -> dict[str, Any]:
    if isinstance(rule, NoneRule):
        return {"kind": "none"}
    if isinstance(rule, ExactRule):
        return {"kind": "exact", "proportion": rule.proportion}
    if isinstance(rule, VariableRule):
        return {"kind": "variable", "weight": rule.weight}
    raise TypeError(f"unknown rule type {type(rule).__name__}")


def _rule_from_dict(data: dict[str, Any]) -> Rule:
    kind = data["kind"]
    if kind == "none":
        return NoneRule()
    if kind == "exact":
        return ExactRule(data["proportion"])
    if kind == "variable":
        return VariableRule(data.get("weight", 1.0))
    raise ValueError(f"unknown rule kind {kind!r}")


def rules_to_dict(rules: RuleMatrix) -> dict[str, Any]:
    """Serialize a rule matrix to the documented JSON schema."""
    return {
        "implicit": _rule_to_dict(rules.implicit_rule),
        "entries": [
            {
                "phase": e.phase_path,
                "resource": e.resource_pattern,
                **_rule_to_dict(e.rule),
            }
            for e in rules._entries
        ],
    }


def rules_from_dict(data: dict[str, Any]) -> RuleMatrix:
    """Rebuild a rule matrix from its JSON form."""
    rules = RuleMatrix(implicit_rule=_rule_from_dict(data.get("implicit", {"kind": "variable"})))
    for e in data.get("entries", ()):
        rules.set_rule(e["phase"], e["resource"], _rule_from_dict(e))
    return rules


# ---------------------------------------------------------------------- #
# Combined documents
# ---------------------------------------------------------------------- #


def save_models(
    path: str | Path,
    *,
    execution_model: ExecutionModel | None = None,
    resource_model: ResourceModel | None = None,
    rules: RuleMatrix | None = None,
) -> None:
    """Write any subset of the three model kinds into one JSON document."""
    doc: dict[str, Any] = {}
    if execution_model is not None:
        doc["execution_model"] = execution_model_to_dict(execution_model)
    if resource_model is not None:
        doc["resource_model"] = resource_model_to_dict(resource_model)
    if rules is not None:
        doc["rules"] = rules_to_dict(rules)
    Path(path).write_text(json.dumps(doc, indent=2))


def load_models(
    path: str | Path,
) -> tuple[ExecutionModel | None, ResourceModel | None, RuleMatrix | None]:
    """Load whichever model kinds the document contains."""
    doc = json.loads(Path(path).read_text())
    execution_model = (
        execution_model_from_dict(doc["execution_model"]) if "execution_model" in doc else None
    )
    resource_model = (
        resource_model_from_dict(doc["resource_model"]) if "resource_model" in doc else None
    )
    rules = rules_from_dict(doc["rules"]) if "rules" in doc else None
    return execution_model, resource_model, rules
