"""Hierarchical performance summaries (paper §III-B's upward propagation).

Grade10 characterizes performance by "first relating system-level
performance to fine-grained, low-level phases, and then propagating
performance data up the hierarchy to characterize the performance of
high-level phases".  This module materializes that propagation: a
:class:`PhaseSummary` tree mirroring the execution model, where every node
aggregates — over all instances of its phase type —

* instance counts and total/mean/max durations,
* blocked time per blocking resource,
* attributed consumption per consumable resource (roll-up of descendants),
* bottlenecked time per resource.

:func:`summarize` builds the tree from a profile;
:func:`render_phase_tree` draws it as an indented text tree, the
hierarchical view analysts start from before drilling into timeslices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from io import StringIO

from .profile import PerformanceProfile

__all__ = ["PhaseSummary", "summarize", "render_phase_tree"]


@dataclass
class PhaseSummary:
    """Aggregated performance data of one phase type (one tree node)."""

    phase_path: str
    n_instances: int = 0
    total_duration: float = 0.0
    max_duration: float = 0.0
    blocked_time: dict[str, float] = field(default_factory=dict)
    resource_usage: dict[str, float] = field(default_factory=dict)  # unit-seconds
    bottleneck_time: dict[str, float] = field(default_factory=dict)
    children: dict[str, "PhaseSummary"] = field(default_factory=dict)

    @property
    def mean_duration(self) -> float:
        return self.total_duration / self.n_instances if self.n_instances else 0.0

    @property
    def total_blocked(self) -> float:
        return sum(self.blocked_time.values())

    def walk(self):
        """Depth-first iteration over (depth, node)."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(list(node.children.values())):
                stack.append((depth + 1, child))

    def find(self, phase_path: str) -> "PhaseSummary":
        """Locate the summary node for one phase type (``KeyError`` if absent)."""
        for _, node in self.walk():
            if node.phase_path == phase_path:
                return node
        raise KeyError(f"no summary node for {phase_path!r}")


def summarize(profile: PerformanceProfile) -> PhaseSummary:
    """Build the phase-type summary tree from a characterized run."""
    trace = profile.execution_trace
    root = PhaseSummary(phase_path="/")

    def node_for(path: str) -> PhaseSummary:
        node = root
        parts = [p for p in path.split("/") if p]
        built = ""
        for part in parts:
            built += "/" + part
            if part not in node.children:
                node.children[part] = PhaseSummary(phase_path=built)
            node = node.children[part]
        return node

    for inst in trace.instances():
        node = node_for(inst.phase_path)
        node.n_instances += 1
        node.total_duration += inst.duration
        node.max_duration = max(node.max_duration, inst.duration)
        for ev in inst.blocking:
            node.blocked_time[ev.resource] = node.blocked_time.get(ev.resource, 0.0) + ev.duration
        for resource in profile.attribution.resources():
            used = profile.attribution.total_usage(inst, resource)
            if used > 0.0:
                node.resource_usage[resource] = node.resource_usage.get(resource, 0.0) + used

    for b in profile.bottlenecks:
        node = node_for(b.phase_path)
        node.bottleneck_time[b.resource] = node.bottleneck_time.get(b.resource, 0.0) + b.duration

    return root


def _fmt_seconds(s: float) -> str:
    if s >= 100.0:
        return f"{s:,.0f}s"
    if s >= 1.0:
        return f"{s:.2f}s"
    return f"{s * 1000.0:.0f}ms"


def render_phase_tree(root: PhaseSummary, *, max_depth: int | None = None) -> str:
    """Indented text rendering of the summary tree."""
    out = StringIO()
    out.write("phase tree (instances, total / mean duration, blocked)\n")
    for depth, node in root.walk():
        if node.phase_path == "/":
            continue
        if max_depth is not None and depth > max_depth:
            continue
        indent = "  " * (depth - 1)
        name = node.phase_path.rsplit("/", 1)[-1]
        line = (
            f"{indent}{name}: n={node.n_instances}, "
            f"total={_fmt_seconds(node.total_duration)}, "
            f"mean={_fmt_seconds(node.mean_duration)}"
        )
        if node.total_blocked > 0:
            worst = max(node.blocked_time, key=node.blocked_time.get)
            line += f", blocked={_fmt_seconds(node.total_blocked)} (mostly {worst})"
        out.write(line + "\n")
    return out.getvalue()
