"""Live incremental characterization: streaming ingest, windowed analysis.

Grade10's batch pipeline characterizes a run only once its log is
complete.  :class:`IncrementalProfile` is the streaming counterpart
(ROADMAP item 2, remaining): it consumes log-event chunks as they
arrive — raw text via :meth:`IncrementalProfile.feed_text` (backed by
:class:`~repro.systems.logging.JsonlStream`) or decoded events via
:meth:`IncrementalProfile.feed` — and maintains two planes of state:

* a **builder** that incrementally mirrors the batch parser's state
  (phase starts/ends, resolved blocking intervals, GC events) with O(1)
  dict updates per event, and
* a **windowed live analyzer** that, as the *sealed watermark* advances,
  runs per-window attribution and bottleneck detection over fixed-size
  slice windows using the columnar kernels
  (:func:`~repro.core.columnar.rasterize_rows` on a window-local grid),
  pruning rows whose phases ended before the window — a window never
  re-walks the full history.

The two planes have different contracts, stated bluntly:

* **Live windows are monotone estimates.**  A window is analyzed once,
  when every event that can affect it has necessarily arrived (the
  watermark is ``min(last event time, earliest unresolved block start)``),
  and never revisited.  Saturation/exact-cap detection inside a window
  uses measured utilization directly, so mid-run numbers are advisory:
  they exist to *watch bottlenecks form*, feeding the SSE bus, the
  ``/runs/<id>/bottlenecks`` endpoint, and the ``--follow`` CLI table.
  Blocking bottleneck seconds, by contrast, accumulate exactly: a
  resolved block's raw duration is final the moment ``block_end`` lands.
* **The final profile is exact.**  :meth:`IncrementalProfile.finalize`
  replays the accumulated events through the batch columnar pipeline
  (:class:`~repro.core.profile.Grade10` with
  ``profile_backend="columnar"``), so feeding a log in chunks of *any*
  size — including 1-event chunks and mid-record byte splits — yields an
  attribution/bottleneck output bit-identical to the one-shot batch run.
  The differential suite in ``tests/core/test_incremental.py`` enforces
  this on all three golden systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from .bottlenecks import EXACT_CAP_THRESHOLD, SATURATION_THRESHOLD
from .profile import DEFAULT_SLICE_DURATION, Grade10, PerformanceProfile
from .phases import ExecutionModel
from .resources import ResourceModel
from .rules import ExactRule, NoneRule, RuleMatrix
from .timeline import TimeGrid
from .traces import ResourceTrace
from ..systems.logging import EventLog, JsonlStream

__all__ = [
    "DEFAULT_WINDOW_SLICES",
    "IncrementalProfile",
    "LiveBottleneck",
    "WindowSummary",
]

_EPS = 1e-12

#: Default analysis window width, in timeslices (0.64 s at the default
#: 10 ms slice): wide enough to amortize the kernel launches, narrow
#: enough that the follow table refreshes several times per simulated run.
#: Callers sizing for a known makespan (the live job executor) pick a
#: width that yields a handful of windows per run.
DEFAULT_WINDOW_SLICES = 64


@dataclass(frozen=True)
class LiveBottleneck:
    """One bottleneck observation from the live plane.

    ``kind`` matches the batch detector's vocabulary (``blocking`` /
    ``saturation`` / ``exact-cap``); ``duration`` is the seconds this
    observation adds — summing a run's observations per ``(resource,
    kind)`` reproduces :attr:`IncrementalProfile.bottleneck_seconds`.
    """

    kind: str
    instance_id: str
    phase_path: str
    resource: str
    duration: float
    window: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form, as carried by ``bottleneck.detected`` events."""
        return {
            "kind": self.kind,
            "instance_id": self.instance_id,
            "phase_path": self.phase_path,
            "resource": self.resource,
            "duration": self.duration,
            "window": self.window,
        }


@dataclass(frozen=True)
class WindowSummary:
    """Result of analyzing one sealed window."""

    index: int
    t_start: float
    t_end: float
    n_rows: int
    bottlenecks: tuple[LiveBottleneck, ...]
    lag_seconds: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form, as carried by ``window.analyzed`` events."""
        return {
            "index": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "n_rows": self.n_rows,
            "bottlenecks": [b.to_dict() for b in self.bottlenecks],
            "lag_seconds": self.lag_seconds,
        }


@dataclass
class _LiveRow:
    """Lightweight mirror of one phase instance for windowed analysis."""

    iid: str
    path: str
    t_start: float
    t_end: float | None  # None while the phase is open
    parent: str | None
    machine: str | None
    worker: str | None
    thread: str | None
    blocked: list[tuple[float, float]] = field(default_factory=list)

    @property
    def phase_path(self) -> str:
        """Alias so :meth:`RuleMatrix.rule_for` can match live rows."""
        return self.path

    def active_intervals(self, cap: float) -> list[tuple[float, float]]:
        """``[t_start, min(end, cap))`` minus the resolved blocked spans."""
        end = cap if self.t_end is None else min(self.t_end, cap)
        if end <= self.t_start:
            return []
        merged: list[list[float]] = []
        for b0, b1 in sorted(self.blocked):
            b0, b1 = max(b0, self.t_start), min(b1, end)
            if b1 <= b0:
                continue
            if merged and b0 <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], b1)
            else:
                merged.append([b0, b1])
        out: list[tuple[float, float]] = []
        cursor = self.t_start
        for b0, b1 in merged:
            if b0 > cursor:
                out.append((cursor, b0))
            cursor = max(cursor, b1)
        if cursor < end:
            out.append((cursor, end))
        return out


class IncrementalProfile:
    """Streaming profile: feed log chunks, watch bottlenecks form, finalize.

    Parameters mirror :class:`~repro.core.profile.Grade10` plus the parse
    knobs of :func:`~repro.adapters.parsing.parse_execution_trace` (the
    incremental ingest replaces the batch parse step) and the live-plane
    controls:

    ``window_slices``
        Width of each live analysis window, in timeslices.
    ``on_window`` / ``on_bottleneck``
        Callbacks invoked synchronously from :meth:`advance` — the hook
        points the serving layer uses to publish ``window.analyzed`` /
        ``bottleneck.detected`` progress events.
    """

    def __init__(
        self,
        execution_model: ExecutionModel,
        resource_model: ResourceModel,
        rules: RuleMatrix | None = None,
        *,
        slice_duration: float = DEFAULT_SLICE_DURATION,
        saturation_threshold: float = SATURATION_THRESHOLD,
        exact_cap_threshold: float = EXACT_CAP_THRESHOLD,
        include_blocking: bool = True,
        include_gc_phases: bool = False,
        window_slices: int = DEFAULT_WINDOW_SLICES,
        on_window: Callable[[WindowSummary], None] | None = None,
        on_bottleneck: Callable[[LiveBottleneck], None] | None = None,
    ) -> None:
        if window_slices <= 0:
            raise ValueError(f"window_slices must be > 0, got {window_slices}")
        self.execution_model = execution_model
        self.resource_model = resource_model
        self.rules = rules if rules is not None else RuleMatrix()
        self.slice_duration = slice_duration
        self.saturation_threshold = saturation_threshold
        self.exact_cap_threshold = exact_cap_threshold
        self.include_blocking = include_blocking
        self.include_gc_phases = include_gc_phases
        self.window_slices = window_slices
        self.on_window = on_window
        self.on_bottleneck = on_bottleneck

        # Raw ingest + stream decoding.
        self._events: list[dict[str, Any]] = []
        self._stream = JsonlStream()

        # Builder plane (mirrors the batch parser's dicts).
        self._row_of: dict[str, _LiveRow] = {}
        self._rows: list[_LiveRow] = []  # emission order, pruned copy below
        self._pending_blocks: dict[tuple[str, str], float] = {}
        self._blocking_acc: dict[tuple[str, str], float] = {}

        # Live analysis plane.
        self._live_rows: list[_LiveRow] = []  # rows not yet behind the watermark
        self._meas: dict[str, list[tuple[float, float, float]]] = {}  # pruned live view
        self._meas_all: dict[str, list[tuple[float, float, float]]] = {}  # for finalize
        self._rule_cache: dict[tuple[str, str], tuple[bool, float] | None] = {}
        self._t0: float | None = None  # live grid origin
        self._last_t = float("-inf")
        self._analyzed_slices = 0
        self._finalized = False

        # Read-side counters (what RunStatus / /metrics consume).
        self.windows_analyzed = 0
        self.events_ingested = 0
        self.bottleneck_seconds: dict[tuple[str, str], float] = {}
        self.last_bottleneck: LiveBottleneck | None = None

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def feed_text(self, chunk: str | bytes) -> list[WindowSummary]:
        """Feed one raw JSONL chunk (any split, including mid-record)."""
        return self.feed(self._stream.feed(chunk))

    def feed(self, events: Iterable[dict[str, Any]]) -> list[WindowSummary]:
        """Ingest decoded events, then analyze any newly sealed windows."""
        if self._finalized:
            raise RuntimeError("IncrementalProfile already finalized")
        for ev in events:
            self._events.append(ev)
            self.events_ingested += 1
            self._ingest(ev)
        return self.advance()

    def feed_measurement(self, resource: str, t_start: float, t_end: float, value: float) -> None:
        """Feed one monitoring sample (used by the live utilization view)."""
        self._meas.setdefault(resource, []).append((t_start, t_end, value))
        self._meas_all.setdefault(resource, []).append((t_start, t_end, value))

    def feed_resource_trace(self, resource_trace: ResourceTrace) -> None:
        """Bulk-feed monitoring samples from a resource trace."""
        for name in resource_trace.measured_resources():
            for m in resource_trace.measurements(name):
                self.feed_measurement(name, m.t_start, m.t_end, m.value)

    def _ingest(self, ev: dict[str, Any]) -> None:
        kind = ev.get("event")
        t = float(ev.get("t", 0.0))
        self._last_t = max(self._last_t, t, float(ev.get("t_end", 0.0)))
        if kind == "phase_start":
            iid = ev["id"]
            if iid in self._row_of:
                return  # duplicate start: first wins, like the batch parser
            row = _LiveRow(
                iid=iid,
                path=ev["path"],
                t_start=t,
                t_end=None,
                parent=ev.get("parent"),
                machine=ev.get("machine"),
                worker=ev.get("worker"),
                thread=ev.get("thread"),
            )
            self._row_of[iid] = row
            self._live_rows.append(row)
            if self._t0 is None or t < self._t0:
                self._t0 = t
        elif kind == "phase_end":
            row = self._row_of.get(ev["id"])
            if row is not None and row.t_end is None:
                row.t_end = t
        elif kind == "block_start":
            self._pending_blocks[(ev["id"], ev["resource"])] = t
        elif kind == "block_end":
            key = (ev["id"], ev["resource"])
            t0 = self._pending_blocks.pop(key, None)
            if t0 is None or t < t0:
                return
            row = self._row_of.get(ev["id"])
            if row is not None and self.include_blocking:
                row.blocked.append((t0, t))
                acc_key = (ev["id"], ev["resource"])
                self._blocking_acc[acc_key] = self._blocking_acc.get(acc_key, 0.0) + (t - t0)
                self._note_bottleneck(
                    LiveBottleneck(
                        kind="blocking",
                        instance_id=ev["id"],
                        phase_path=row.path,
                        resource=ev["resource"],
                        duration=t - t0,
                        window=self.windows_analyzed,
                    )
                )
        elif kind == "gc" and self.include_gc_phases:
            t_end = float(ev["t_end"])
            machine = ev.get("machine")
            k = sum(1 for r in self._row_of.values() if r.path == "/GC")
            iid = f"/GC#{machine}#{k}"
            row = _LiveRow(
                iid=iid,
                path="/GC",
                t_start=t,
                t_end=t_end,
                parent=None,
                machine=machine,
                worker=machine,
                thread=None,
            )
            self._row_of[iid] = row
            self._live_rows.append(row)
            if self._t0 is None or t < self._t0:
                self._t0 = t

    # ------------------------------------------------------------------ #
    # Live windowed analysis
    # ------------------------------------------------------------------ #
    @property
    def lag_seconds(self) -> float:
        """How far the analyzed frontier trails the newest event."""
        if self._t0 is None or self._last_t == float("-inf"):
            return 0.0
        frontier = self._t0 + self._analyzed_slices * self.slice_duration
        return max(0.0, self._last_t - frontier)

    def _safe_time(self) -> float:
        """Largest time every relevant event has necessarily arrived for.

        The emitters write events in time order, so nothing earlier than
        the newest timestamp can still arrive; an unresolved block makes
        activity unknowable from its start onward, so the watermark also
        floors at the earliest pending ``block_start``.
        """
        safe = self._last_t
        if self._pending_blocks:
            safe = min(safe, min(self._pending_blocks.values()))
        return safe

    def advance(self) -> list[WindowSummary]:
        """Analyze every window now fully behind the sealed watermark."""
        if self._t0 is None:
            return []
        sd = self.slice_duration
        safe = self._safe_time()
        out: list[WindowSummary] = []
        while True:
            lo = self._analyzed_slices
            hi = lo + self.window_slices
            if self._t0 + hi * sd > safe:
                break
            out.append(self._analyze_window(lo, hi))
            self._analyzed_slices = hi
        return out

    def _note_bottleneck(self, b: LiveBottleneck) -> None:
        key = (b.resource, b.kind)
        self.bottleneck_seconds[key] = self.bottleneck_seconds.get(key, 0.0) + b.duration
        self.last_bottleneck = b
        if self.on_bottleneck is not None:
            self.on_bottleneck(b)

    def _window_rule(self, row: _LiveRow, resource: str) -> tuple[bool, float] | None:
        """Resolved ``(is_exact, magnitude)`` for a row, cached per id."""
        key = (row.iid, resource)
        if key in self._rule_cache:
            return self._rule_cache[key]
        rule = self.rules.rule_for(row, resource)  # duck-typed: path + location
        if isinstance(rule, NoneRule):
            resolved: tuple[bool, float] | None = None
        elif isinstance(rule, ExactRule):
            resolved = (True, rule.proportion * self.resource_model.consumable[resource].capacity)
        else:
            resolved = (False, rule.weight)
        self._rule_cache[key] = resolved
        return resolved

    def _window_utilization(self, resource: str, win: TimeGrid) -> np.ndarray | None:
        """Measured per-slice utilization inside one window, or None."""
        ms = self._meas.get(resource)
        if not ms:
            return None
        capacity = self.resource_model.consumable[resource].capacity
        t_lo, t_hi = win.t0, win.t_end
        amount = np.zeros(win.n_slices)
        cover = np.zeros(win.n_slices)
        edges = win.edges
        keep: list[tuple[float, float, float]] = []
        for m0, m1, val in ms:
            if m1 > t_lo:
                keep.append((m0, m1, val))
            if m1 <= t_lo or m0 >= t_hi:
                continue
            frac = np.clip(
                (np.minimum(edges[1:], m1) - np.maximum(edges[:-1], m0)) / win.slice_duration,
                0.0,
                1.0,
            )
            amount += frac * val
            cover += frac
        self._meas[resource] = keep  # windows are monotone: drop consumed samples
        util = np.divide(amount, cover, out=np.zeros_like(amount), where=cover > _EPS)
        return util / capacity

    def _analyze_window(self, lo: int, hi: int) -> WindowSummary:
        from .columnar import rasterize_rows

        sd = self.slice_duration
        assert self._t0 is not None
        win = TimeGrid(t0=self._t0 + lo * sd, slice_duration=sd, n_slices=hi - lo)
        cap = win.t_end

        # Select rows overlapping the window; prune rows fully behind it.
        # This keeps each window's work proportional to live concurrency,
        # not to run length.
        live: list[_LiveRow] = []
        rows: list[_LiveRow] = []
        for row in self._live_rows:
            if row.t_end is not None and row.t_end <= win.t0:
                continue  # ended before this window: never needed again
            live.append(row)
            if row.t_start < cap:
                rows.append(row)
        self._live_rows = live

        bottlenecks: list[LiveBottleneck] = []
        n_rows = len(rows)
        if n_rows:
            local = {row.iid: r for r, row in enumerate(rows)}
            idx: list[int] = []
            starts: list[float] = []
            ends: list[float] = []
            for r, row in enumerate(rows):
                for s, e in row.active_intervals(cap):
                    idx.append(r)
                    starts.append(s)
                    ends.append(e)
            raw = rasterize_rows(
                win,
                np.asarray(idx, dtype=np.int64),
                np.asarray(starts, dtype=np.float64),
                np.asarray(ends, dtype=np.float64),
                n_rows,
            )
            parent = np.fromiter(
                (local.get(row.parent, -1) if row.parent is not None else -1 for row in rows),
                dtype=np.int64,
                count=n_rows,
            )
            child_sum = np.zeros_like(raw)
            has_child = np.zeros(n_rows, dtype=bool)
            is_kid = parent >= 0
            if np.any(is_kid):
                np.add.at(child_sum, parent[is_kid], raw[is_kid])
                has_child[parent[is_kid]] = True
            attr = np.where(has_child[:, None], np.clip(raw - child_sum, 0.0, 1.0), raw)

            sat_floor = sd / 2
            for resource in self.resource_model.consumable:
                util = self._window_utilization(resource, win)
                if util is None:
                    continue
                demand = np.zeros_like(attr)
                is_exact = np.zeros(n_rows, dtype=bool)
                exact_total = np.zeros(win.n_slices)
                for r, row in enumerate(rows):
                    resolved = self._window_rule(row, resource)
                    if resolved is None:
                        continue
                    is_exact[r], magnitude = resolved
                    demand[r] = magnitude * attr[r]
                    if is_exact[r]:
                        exact_total += demand[r]
                active = demand > _EPS
                saturated = util >= self.saturation_threshold
                sat = active & saturated[None, :]
                sat_times = sat.sum(axis=1).astype(np.float64) * sd
                # Live exact-cap estimate: the batch upsampler satisfies
                # exact demand first, so exact rows run at (nearly) full
                # demand whenever the measured amount covers the summed
                # exact demand — test that supply ratio per slice.
                capacity = self.resource_model.consumable[resource].capacity
                supply = np.divide(
                    util * capacity,
                    exact_total,
                    out=np.full(win.n_slices, np.inf),
                    where=exact_total > _EPS,
                )
                capped = (
                    active
                    & is_exact[:, None]
                    & (supply[None, :] >= self.exact_cap_threshold)
                    & ~saturated[None, :]
                )
                cap_times = capped.sum(axis=1).astype(np.float64) * sd
                for r, row in enumerate(rows):
                    if sat_times[r] >= sat_floor:
                        b = LiveBottleneck(
                            kind="saturation",
                            instance_id=row.iid,
                            phase_path=row.path,
                            resource=resource,
                            duration=float(sat_times[r]),
                            window=self.windows_analyzed,
                        )
                        bottlenecks.append(b)
                        self._note_bottleneck(b)
                    if is_exact[r] and cap_times[r] >= sat_floor:
                        b = LiveBottleneck(
                            kind="exact-cap",
                            instance_id=row.iid,
                            phase_path=row.path,
                            resource=resource,
                            duration=float(cap_times[r]),
                            window=self.windows_analyzed,
                        )
                        bottlenecks.append(b)
                        self._note_bottleneck(b)

        self.windows_analyzed += 1
        summary = WindowSummary(
            index=self.windows_analyzed - 1,
            t_start=win.t0,
            t_end=win.t_end,
            n_rows=n_rows,
            bottlenecks=tuple(bottlenecks),
            lag_seconds=max(0.0, self._last_t - win.t_end),
        )
        if self.on_window is not None:
            self.on_window(summary)
        return summary

    # ------------------------------------------------------------------ #
    # Finalize
    # ------------------------------------------------------------------ #
    def finalize(self, resource_trace: ResourceTrace | None = None) -> PerformanceProfile:
        """Close the stream and produce the exact batch profile.

        Any decoded-but-unanalyzed span is first drained through the live
        plane (one trailing partial window), then the accumulated events
        replay through the batch columnar pipeline.  The result is
        bit-identical to a one-shot ``Grade10.characterize`` on the same
        log — the convergence invariant the differential suite pins down.
        """
        if self._finalized:
            raise RuntimeError("IncrementalProfile already finalized")
        # Imported here: repro.adapters imports repro.core at package init.
        from ..adapters.parsing import (
            merge_blocking_into_resource_trace,
            parse_execution_trace,
        )

        tail = self._stream.close()
        if tail:
            for ev in tail:
                self._events.append(ev)
                self.events_ingested += 1
                self._ingest(ev)
        self.advance()
        # Drain the trailing partial window so live counters cover the run.
        if self._t0 is not None and self._last_t > self._t0:
            sd = self.slice_duration
            done = self._t0 + self._analyzed_slices * sd
            if self._last_t > done:
                n = int(np.ceil((self._last_t - done) / sd - 1e-9))
                if n > 0:
                    self._analyze_window(self._analyzed_slices, self._analyzed_slices + n)
                    self._analyzed_slices += n
        self._finalized = True

        log = EventLog()
        log.events = list(self._events)
        trace = parse_execution_trace(
            log,
            include_blocking=self.include_blocking,
            include_gc_phases=self.include_gc_phases,
        )
        if resource_trace is None:
            resource_trace = ResourceTrace()
            for name, samples in self._meas_all.items():
                for t_start, t_end, value in samples:
                    resource_trace.add_measurement(name, t_start, t_end, value)
            merge_blocking_into_resource_trace(log, resource_trace)
        g10 = Grade10(
            self.execution_model,
            self.resource_model,
            self.rules,
            slice_duration=self.slice_duration,
            saturation_threshold=self.saturation_threshold,
            exact_cap_threshold=self.exact_cap_threshold,
            profile_backend="columnar",
        )
        return g10.characterize(trace, resource_trace)
