"""Execution and resource traces (paper §III-C).

Traces describe *one particular run* of a workload, as opposed to the models
which describe the framework:

* The **execution trace** is the set of phase instances observed in the run —
  each a concrete occurrence of an execution-model phase type with a start
  and end time, a location (machine / worker / thread), and the blocking
  events that interrupted it.
* The **resource trace** holds, per consumable resource, the coarse-grained
  monitoring measurements (average consumption rate over multi-timeslice
  windows), and per blocking resource the list of blocking events.

The two traces deliberately have different granularity: execution logs are
cheap to produce at fine granularity, monitoring is not.  The resource
attribution stage (:mod:`repro.core.attribution`) bridges the gap by
upsampling.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from .phases import PATH_SEPARATOR
from .timeline import TimeGrid, rasterize_intervals

__all__ = [
    "BlockingEvent",
    "PhaseInstance",
    "ExecutionTrace",
    "ResourceMeasurement",
    "ResourceTrace",
]


@dataclass(frozen=True)
class BlockingEvent:
    """An interval during which a blocking resource halted a phase instance."""

    resource: str
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(f"blocking event ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class PhaseInstance:
    """One concrete execution of a phase type.

    Parameters
    ----------
    instance_id:
        Unique identifier within the trace.
    phase_path:
        Path of the phase type in the execution model.
    t_start, t_end:
        Wall-clock interval of the instance (seconds).
    parent_id:
        Identifier of the enclosing instance, or ``None`` for top-level
        phases.
    machine, worker, thread:
        Location attributes; used for rule placeholders, locality
        constraints in the replay simulator, and imbalance grouping.
    blocking:
        Blocking events that interrupted this instance.  A phase is *active*
        when started, not yet ended, and not blocked.
    depends_on:
        Explicit instance-level predecessors, for systems whose dependency
        structure is per-instance rather than per-type (e.g. the stage DAG
        of a Spark-like dataflow job, the paper's §V extension target).
        These are honoured by the replay simulator in addition to the
        execution model's type-level sibling DAG.
    """

    instance_id: str
    phase_path: str
    t_start: float
    t_end: float
    parent_id: str | None = None
    machine: str | None = None
    worker: str | None = None
    thread: str | None = None
    blocking: list[BlockingEvent] = field(default_factory=list)
    depends_on: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(
                f"phase instance {self.instance_id!r} ends before it starts "
                f"({self.t_start} .. {self.t_end})"
            )

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def phase_name(self) -> str:
        return self.phase_path.rsplit(PATH_SEPARATOR, 1)[-1]

    def encloses(self, other: "PhaseInstance", *, tol: float = 0.0) -> bool:
        """True when ``other``'s interval lies within this instance's interval.

        The hierarchy invariant every well-formed trace satisfies: a child
        runs inside its parent.  ``tol`` admits boundary round-off.
        """
        return (
            other.t_start >= self.t_start - tol and other.t_end <= self.t_end + tol
        )

    def blocked_time(self, resource: str | None = None) -> float:
        """Total time this instance spent blocked (optionally on one resource).

        Overlapping blocking events on *different* resources are counted once
        per resource; callers computing "any blocked" time should use
        :meth:`blocked_intervals`.
        """
        return sum(b.duration for b in self.blocking if resource is None or b.resource == resource)

    def blocked_intervals(self) -> list[tuple[float, float]]:
        """Union of all blocking intervals, merged and clipped to the instance."""
        ivs = sorted(
            (max(b.t_start, self.t_start), min(b.t_end, self.t_end))
            for b in self.blocking
            if b.t_end > self.t_start and b.t_start < self.t_end
        )
        merged: list[tuple[float, float]] = []
        for s, e in ivs:
            if merged and s <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], e))
            else:
                merged.append((s, e))
        return merged

    def active_intervals(self) -> list[tuple[float, float]]:
        """Sub-intervals of ``[t_start, t_end)`` during which the phase is active."""
        out: list[tuple[float, float]] = []
        cursor = self.t_start
        for s, e in self.blocked_intervals():
            if s > cursor:
                out.append((cursor, s))
            cursor = max(cursor, e)
        if self.t_end > cursor:
            out.append((cursor, self.t_end))
        return out

    def add_blocking(self, resource: str, t_start: float, t_end: float) -> None:
        """Record a blocking interval on ``resource`` for this instance."""
        self.blocking.append(BlockingEvent(resource, t_start, t_end))


class ExecutionTrace:
    """The set of phase instances observed in one run."""

    def __init__(self) -> None:
        self._instances: dict[str, PhaseInstance] = {}
        self._children: dict[str | None, list[str]] = {}
        self._id_counter = itertools.count()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add(self, instance: PhaseInstance) -> PhaseInstance:
        """Add a fully built instance (parents must be added first)."""
        if instance.instance_id in self._instances:
            raise ValueError(f"duplicate instance id {instance.instance_id!r}")
        if instance.parent_id is not None and instance.parent_id not in self._instances:
            raise ValueError(
                f"parent {instance.parent_id!r} of {instance.instance_id!r} not in trace"
            )
        self._instances[instance.instance_id] = instance
        self._children.setdefault(instance.parent_id, []).append(instance.instance_id)
        return instance

    def record(
        self,
        phase_path: str,
        t_start: float,
        t_end: float,
        *,
        parent: PhaseInstance | str | None = None,
        machine: str | None = None,
        worker: str | None = None,
        thread: str | None = None,
        instance_id: str | None = None,
        depends_on: list[str] | None = None,
    ) -> PhaseInstance:
        """Create, add, and return a new phase instance."""
        parent_id = parent.instance_id if isinstance(parent, PhaseInstance) else parent
        if instance_id is None:
            instance_id = f"{phase_path}#{next(self._id_counter)}"
        return self.add(
            PhaseInstance(
                instance_id=instance_id,
                phase_path=phase_path,
                t_start=t_start,
                t_end=t_end,
                parent_id=parent_id,
                machine=machine,
                worker=worker,
                thread=thread,
                depends_on=list(depends_on) if depends_on else [],
            )
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __getitem__(self, instance_id: str) -> PhaseInstance:
        return self._instances[instance_id]

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._instances

    def __len__(self) -> int:
        return len(self._instances)

    def instances(self, phase_path: str | None = None) -> list[PhaseInstance]:
        """All instances, optionally filtered to one phase type."""
        if phase_path is None:
            return list(self._instances.values())
        return [i for i in self._instances.values() if i.phase_path == phase_path]

    def children_of(self, instance: PhaseInstance | str | None) -> list[PhaseInstance]:
        """Direct child instances (pass ``None`` for top-level instances)."""
        key = instance.instance_id if isinstance(instance, PhaseInstance) else instance
        return [self._instances[i] for i in self._children.get(key, [])]

    def roots(self) -> list[PhaseInstance]:
        """Top-level instances (no parent)."""
        return self.children_of(None)

    def descendants_of(self, instance: PhaseInstance | str) -> list[PhaseInstance]:
        """All transitive descendants, depth-first."""
        out: list[PhaseInstance] = []
        stack = list(reversed(self.children_of(instance)))
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(self.children_of(node)))
        return out

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def t_start(self) -> float:
        if not self._instances:
            return 0.0
        return min(i.t_start for i in self._instances.values())

    @property
    def t_end(self) -> float:
        if not self._instances:
            return 0.0
        return max(i.t_end for i in self._instances.values())

    @property
    def makespan(self) -> float:
        return self.t_end - self.t_start

    def grid(self, slice_duration: float) -> TimeGrid:
        """The timeslice grid covering this trace."""
        return TimeGrid.covering(self.t_start, self.t_end, slice_duration)

    def activity_fraction(self, instance: PhaseInstance, grid: TimeGrid) -> np.ndarray:
        """Per-slice fraction of each slice during which ``instance`` is active."""
        ivs = instance.active_intervals()
        if not ivs:
            return np.zeros(grid.n_slices)
        arr = np.asarray(ivs, dtype=np.float64)
        return rasterize_intervals(grid, arr[:, 0], arr[:, 1])

    def iter_attributable_instances(self, grid: TimeGrid):
        """Lazily yield ``(instance, active_fraction_per_slice)`` pairs.

        An instance is attributable during the parts of its lifetime when
        none of its children are active: inner phases' resource usage is the
        roll-up of their descendants, so attributing to both a parent and
        its running child would double-count.  Only pairs with strictly
        positive activity somewhere are yielded.

        Each instance's raw activity is rasterized exactly once (it is
        needed both at its own visit and — as a child — at its parent's
        visit) and evicted from the memo as soon as its last consumer has
        seen it, so the trace never holds more per-slice arrays than the
        deepest parent/child frontier requires.
        """
        # An instance's raw activity is read at its own visit, plus once at
        # its parent's visit when it has one; parents precede children in
        # insertion order, so the parent's read always happens first.
        remaining = {
            iid: (2 if inst.parent_id is not None else 1)
            for iid, inst in self._instances.items()
        }
        cache: dict[str, np.ndarray] = {}

        def consume(inst: PhaseInstance) -> np.ndarray:
            iid = inst.instance_id
            arr = cache.get(iid)
            if arr is None:
                arr = self.activity_fraction(inst, grid)
            remaining[iid] -= 1
            if remaining[iid] > 0:
                cache[iid] = arr
            else:
                cache.pop(iid, None)
            return arr

        for inst in self._instances.values():
            frac = consume(inst)
            kids = self.children_of(inst)
            if kids:
                child_activity = np.zeros(grid.n_slices)
                for kid in kids:
                    child_activity += consume(kid)
                frac = np.clip(frac - child_activity, 0.0, 1.0)
            if np.any(frac > 0.0):
                yield inst, frac

    def attributable_instances(self, grid: TimeGrid) -> list[tuple[PhaseInstance, np.ndarray]]:
        """Materialized form of :meth:`iter_attributable_instances`."""
        return list(self.iter_attributable_instances(grid))

    def concurrent_groups(self) -> dict[tuple[str | None, str], list[PhaseInstance]]:
        """Group instances by (parent, phase type).

        These groups are the unit of the paper's imbalance analysis: only
        work performed by concurrent phases of the same type under the same
        parent is considered interchangeable (§III-F).
        """
        groups: dict[tuple[str | None, str], list[PhaseInstance]] = {}
        for inst in self._instances.values():
            groups.setdefault((inst.parent_id, inst.phase_path), []).append(inst)
        return groups


@dataclass(frozen=True)
class ResourceMeasurement:
    """One monitoring sample: average consumption rate over a window.

    ``value`` is the mean rate of consumption of the resource over
    ``[t_start, t_end)``, in the resource's units (e.g. cores for a CPU
    resource, bytes/s for a NIC).
    """

    resource: str
    t_start: float
    t_end: float
    value: float

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError(f"measurement window must have positive length: {self}")
        if self.value < 0.0:
            raise ValueError(f"measurement value must be >= 0: {self}")

    @property
    def total(self) -> float:
        """Total amount consumed during the window (rate × duration)."""
        return self.value * (self.t_end - self.t_start)


class ResourceTrace:
    """Monitoring data for one run: measurements and blocking events."""

    def __init__(self) -> None:
        self._measurements: dict[str, list[ResourceMeasurement]] = {}
        self._blocking_events: dict[str, list[BlockingEvent]] = {}
        self._sorted: set[str] = set()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_measurement(self, resource: str, t_start: float, t_end: float, value: float) -> None:
        """Record one monitoring sample (average rate over the window)."""
        self._measurements.setdefault(resource, []).append(
            ResourceMeasurement(resource, t_start, t_end, value)
        )
        self._sorted.discard(resource)

    def add_blocking_event(self, resource: str, t_start: float, t_end: float) -> None:
        """Record one blocking interval on a blocking resource."""
        self._blocking_events.setdefault(resource, []).append(
            BlockingEvent(resource, t_start, t_end)
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def measured_resources(self) -> list[str]:
        """Names of resources with at least one measurement."""
        return list(self._measurements)

    def measurements(self, resource: str) -> list[ResourceMeasurement]:
        """Measurements for ``resource``, sorted by window start."""
        if resource not in self._sorted:
            self._measurements.setdefault(resource, []).sort(key=lambda m: m.t_start)
            self._sorted.add(resource)
        return self._measurements.get(resource, [])

    def blocking_resources(self) -> list[str]:
        """Names of resources with at least one blocking event."""
        return list(self._blocking_events)

    def blocking_events(self, resource: str | None = None) -> list[BlockingEvent]:
        """Blocking events, optionally filtered to one resource."""
        if resource is not None:
            return list(self._blocking_events.get(resource, []))
        return [e for evs in self._blocking_events.values() for e in evs]

    def value_at(self, resource: str, t: float) -> float:
        """Measured average rate at time ``t`` (0.0 outside any window)."""
        ms = self.measurements(resource)
        starts = [m.t_start for m in ms]
        i = bisect_right(starts, t) - 1
        if i >= 0 and ms[i].t_start <= t < ms[i].t_end:
            return ms[i].value
        return 0.0

    def total_consumption(self, resource: str) -> float:
        """Total consumption over all measurement windows (rate × duration)."""
        return sum(m.total for m in self.measurements(resource))
