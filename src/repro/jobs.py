"""Analysis-as-a-service job model: spec validation and a bounded queue.

``repro serve`` historically was a read-only window onto a run executing
in the same process.  This module is the *write side* that turns it into
a service: clients ``POST /jobs`` a run/suite spec, get a job id back,
and a bounded worker pool executes jobs through the existing batch
engine (:func:`repro.parallel.run_grid`).  Three pieces:

* :func:`parse_job_spec` validates an untrusted JSON body against the
  repo's grid/config model (systems, datasets, algorithms, presets) and
  normalizes it into an immutable :class:`JobSpec`.  Every rejection is
  a typed :class:`JobSpecError` carrying the offending field — the HTTP
  layer maps it to a structured 400 and *nothing* is enqueued.
* :class:`JobQueue` is the bounded submit-and-execute engine.  Admission
  is atomic: a submitted job either occupies a queue slot, is registered
  with the :class:`~repro.progress.RunRegistry`, and has a live
  :class:`~repro.progress.RunStatus` (so ``/runs``, ``/events`` and
  ``/metrics`` report it with zero new read-side code), or it is
  rejected with :class:`QueueFullError` (HTTP 429 + ``Retry-After``)
  and leaves no trace.  ``workers`` daemon threads drain the queue and
  run each job's cells via ``run_grid`` with the job's pre-built status.
* The job lifecycle is ``queued → running → done|failed|cancelled``.
  ``cancel`` flips a *queued* job to ``cancelled`` (a running job runs to
  completion — the drain contract); every path, including cancellation,
  ends with the status's terminal ``run.finished`` event, so an SSE
  consumer needs exactly one stop condition.

Events recorded on a job's status beyond the batch engine's own:
``job.queued`` (admission), ``job.started`` (a worker picked it up),
``job.failed`` (executor raised) and ``job.cancelled``.

Every job also carries a distributed trace: :meth:`JobQueue.submit`
accepts the ``trace_id``/``parent_span_id`` the HTTP layer parsed off the
client's ``traceparent`` header, the worker records explicit
``job.queued-wait`` and ``job.execute`` spans onto a per-job
:class:`~repro.obs.Tracer` (installed as the worker thread's tracer
overlay so every pipeline-stage span lands on it too), and
:func:`assemble_job_trace` merges the server-side HTTP spans with the
job's own into one Chrome-trace document for ``GET /jobs/<id>/trace``.
Queue-wait and execution durations additionally feed the
``job_queue_wait_seconds`` / ``job_execute_seconds`` histogram families
exposed on ``/metrics``.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from . import obs
from .obs_logging import get_logger
from .progress import ProgressEvent, RunRegistry, RunStatus

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_WORKERS",
    "JOB_STATES",
    "MAX_CELLS_PER_JOB",
    "MAX_JOBS_PER_JOB",
    "PRESETS",
    "TERMINAL_STATES",
    "Job",
    "JobError",
    "JobNotCancellableError",
    "JobQueue",
    "JobSpec",
    "JobSpecError",
    "QueueClosedError",
    "QueueFullError",
    "UnknownJobError",
    "assemble_job_trace",
    "parse_job_spec",
]

_LOG = get_logger("repro.jobs")

#: Dataset presets a job may request (mirrors the CLI choices).
PRESETS = ("tiny", "small", "full")
#: Upper bound on ``len(systems) × len(grid)`` — one submission cannot
#: monopolize the service with an unbounded sweep.
MAX_CELLS_PER_JOB = 64
#: Upper bound on the per-job worker processes a spec may request.
MAX_JOBS_PER_JOB = 8
#: Default bounded-queue capacity (queued jobs; running jobs don't count).
DEFAULT_CAPACITY = 32
#: Default worker-thread pool size.
DEFAULT_WORKERS = 2

#: The job lifecycle states, in order of first possible occurrence.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Fallback ``Retry-After`` hint when no job has completed yet.  Also the
#: floor of every hint: HTTP clients round the header down to whole
#: seconds, so anything below 1 reads as "retry immediately" and turns
#: backpressure into a retry storm when jobs finish in microseconds.
_DEFAULT_RETRY_AFTER_S = 1.0

#: How many recent job durations feed the backpressure estimate (and the
#: bound on the duration history — older entries never influence it).
_RETRY_WINDOW = 16


class JobError(Exception):
    """Base of every typed job-service failure."""


class JobSpecError(JobError):
    """A submitted job spec failed validation (maps to HTTP 400)."""

    def __init__(self, message: str, *, job_field: str | None = None) -> None:
        super().__init__(message)
        self.job_field = job_field

    def to_doc(self) -> dict[str, Any]:
        """Structured error body the HTTP layer returns verbatim."""
        doc: dict[str, Any] = {"error": str(self)}
        if self.job_field is not None:
            doc["field"] = self.job_field
        return doc


class QueueFullError(JobError):
    """The bounded queue is at capacity (maps to HTTP 429)."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"job queue full; retry after {retry_after_s:.1f}s"
        )
        self.retry_after_s = retry_after_s


class QueueClosedError(JobError):
    """The queue no longer accepts submissions (shutting down)."""


class UnknownJobError(JobError):
    """No job with the requested id exists (maps to HTTP 404)."""


class JobNotCancellableError(JobError):
    """The job already left the ``queued`` state (maps to HTTP 409)."""

    def __init__(self, job_id: str, state: str) -> None:
        super().__init__(f"job {job_id} is {state}; only queued jobs can be cancelled")
        self.state = state


# ---------------------------------------------------------------------- #
# Job specs: validation and normalization
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class JobSpec:
    """One validated, normalized run/suite request.

    The canonical JSON form (:meth:`to_dict`) round-trips through
    :func:`parse_job_spec` unchanged — the property the Hypothesis suite
    pins so a spec read back off ``/runs`` can be resubmitted verbatim.
    """

    preset: str = "tiny"
    systems: tuple[str, ...] = ("giraph",)
    grid: tuple[tuple[str, str], ...] = (("graph500", "pr"),)
    seed: int = 0
    characterize: bool = False
    jobs: int = 1
    cache: bool = True
    #: Live incremental analysis: the executor streams each cell's event
    #: log through :class:`repro.core.incremental.IncrementalProfile`,
    #: publishing ``window.analyzed`` / ``bottleneck.detected`` events on
    #: the job's status as windows seal.  Live cells always execute (the
    #: run cache is bypassed — a replayed profile has no stream to watch).
    live: bool = False

    @property
    def n_cells(self) -> int:
        """Cells this job expands into (systems × grid)."""
        return len(self.systems) * len(self.grid)

    def labels(self) -> list[str]:
        """The cell labels, in execution order (the RunStatus vocabulary)."""
        return [
            f"{system}/{dataset}/{algorithm}"
            for system in self.systems
            for dataset, algorithm in self.grid
        ]

    def cells(self) -> list:
        """Expand into the batch engine's :class:`~repro.parallel.CellSpec` list."""
        from .parallel import CellSpec
        from .workloads.runner import WorkloadSpec

        return [
            CellSpec(
                WorkloadSpec(
                    system, dataset, algorithm, preset=self.preset, seed=self.seed
                ),
                characterize=self.characterize,
            )
            for system in self.systems
            for dataset, algorithm in self.grid
        ]

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-native form (fixed key set, lists not tuples)."""
        return {
            "preset": self.preset,
            "systems": list(self.systems),
            "grid": [[dataset, algorithm] for dataset, algorithm in self.grid],
            "seed": self.seed,
            "characterize": self.characterize,
            "jobs": self.jobs,
            "cache": self.cache,
            "live": self.live,
        }


def _require_str(value: Any, name: str) -> str:
    if not isinstance(value, str):
        raise JobSpecError(
            f"{name} must be a string, got {type(value).__name__}", job_field=name
        )
    return value


def _require_int(value: Any, name: str) -> int:
    # bool is an int subclass; a spec saying "seed": true is a mistake.
    if isinstance(value, bool) or not isinstance(value, int):
        raise JobSpecError(
            f"{name} must be an integer, got {value!r}", job_field=name
        )
    return value


def _require_bool(value: Any, name: str) -> bool:
    if not isinstance(value, bool):
        raise JobSpecError(
            f"{name} must be a boolean, got {value!r}", job_field=name
        )
    return value


def _parse_grid_entry(entry: Any, index: int, *, datasets: tuple[str, ...],
                      algorithms: tuple[str, ...]) -> tuple[str, str]:
    name = f"grid[{index}]"
    if isinstance(entry, str):
        dataset, sep, algorithm = entry.partition("/")
        if not sep:
            raise JobSpecError(
                f"{name}: expected 'dataset/algorithm', got {entry!r}",
                job_field="grid",
            )
    elif isinstance(entry, (list, tuple)) and len(entry) == 2:
        dataset, algorithm = entry
    else:
        raise JobSpecError(
            f"{name}: expected a [dataset, algorithm] pair, got {entry!r}",
            job_field="grid",
        )
    dataset = _require_str(dataset, f"{name}.dataset")
    algorithm = _require_str(algorithm, f"{name}.algorithm")
    if dataset not in datasets:
        raise JobSpecError(
            f"{name}: unknown dataset {dataset!r}; choose from {list(datasets)}",
            job_field="grid",
        )
    if algorithm not in algorithms:
        raise JobSpecError(
            f"{name}: unknown algorithm {algorithm!r}; choose from {list(algorithms)}",
            job_field="grid",
        )
    return dataset, algorithm


def parse_job_spec(body: Any) -> JobSpec:
    """Validate an untrusted JSON body into a :class:`JobSpec`.

    Raises :class:`JobSpecError` (with the offending field name) on any
    problem: non-object bodies, unknown keys, wrong types, unknown
    systems/datasets/algorithms/presets, duplicate systems or grid
    entries, and sweeps larger than :data:`MAX_CELLS_PER_JOB` cells.
    """
    from .algorithms import ALGORITHMS
    from .workloads import dataset_names
    from .workloads.runner import SYSTEMS

    if not isinstance(body, Mapping):
        raise JobSpecError(
            f"job spec must be a JSON object, got {type(body).__name__}"
        )
    known = {"preset", "systems", "grid", "seed", "characterize", "jobs", "cache", "live"}
    unknown = sorted(set(body) - known)
    if unknown:
        raise JobSpecError(
            f"unknown field(s): {', '.join(map(repr, unknown))}",
            job_field=unknown[0],
        )

    defaults = JobSpec()
    preset = _require_str(body.get("preset", defaults.preset), "preset")
    if preset not in PRESETS:
        raise JobSpecError(
            f"unknown preset {preset!r}; choose from {list(PRESETS)}",
            job_field="preset",
        )

    raw_systems = body.get("systems", list(defaults.systems))
    if isinstance(raw_systems, str):
        raw_systems = [raw_systems]
    if not isinstance(raw_systems, (list, tuple)) or not raw_systems:
        raise JobSpecError(
            "systems must be a non-empty list of system names",
            job_field="systems",
        )
    systems: list[str] = []
    for i, system in enumerate(raw_systems):
        system = _require_str(system, f"systems[{i}]")
        if system not in SYSTEMS:
            raise JobSpecError(
                f"unknown system {system!r}; choose from {list(SYSTEMS)}",
                job_field="systems",
            )
        if system in systems:
            raise JobSpecError(
                f"duplicate system {system!r}", job_field="systems"
            )
        systems.append(system)

    datasets = tuple(dataset_names())
    algorithms = tuple(sorted(ALGORITHMS))
    raw_grid = body.get("grid", [list(pair) for pair in defaults.grid])
    if not isinstance(raw_grid, (list, tuple)) or not raw_grid:
        raise JobSpecError(
            "grid must be a non-empty list of [dataset, algorithm] pairs",
            job_field="grid",
        )
    grid: list[tuple[str, str]] = []
    for i, entry in enumerate(raw_grid):
        pair = _parse_grid_entry(entry, i, datasets=datasets, algorithms=algorithms)
        if pair in grid:
            raise JobSpecError(
                f"duplicate grid entry {'/'.join(pair)!r}", job_field="grid"
            )
        grid.append(pair)

    seed = _require_int(body.get("seed", defaults.seed), "seed")
    characterize = _require_bool(
        body.get("characterize", defaults.characterize), "characterize"
    )
    cache = _require_bool(body.get("cache", defaults.cache), "cache")
    live = _require_bool(body.get("live", defaults.live), "live")
    jobs = _require_int(body.get("jobs", defaults.jobs), "jobs")
    if not (1 <= jobs <= MAX_JOBS_PER_JOB):
        raise JobSpecError(
            f"jobs must be in [1, {MAX_JOBS_PER_JOB}], got {jobs}", job_field="jobs"
        )

    n_cells = len(systems) * len(grid)
    if n_cells > MAX_CELLS_PER_JOB:
        raise JobSpecError(
            f"job expands to {n_cells} cells, over the {MAX_CELLS_PER_JOB}-cell limit",
            job_field="grid",
        )
    return JobSpec(
        preset=preset,
        systems=tuple(systems),
        grid=tuple(grid),
        seed=seed,
        characterize=characterize,
        jobs=jobs,
        cache=cache,
        live=live,
    )


# ---------------------------------------------------------------------- #
# The bounded queue and worker pool
# ---------------------------------------------------------------------- #

#: Never-recycled per-process job number (atomic under the GIL).
_JOB_SERIAL = itertools.count(1)


@dataclass
class Job:
    """One submitted job: spec, live status, and lifecycle bookkeeping.

    ``trace_id`` ties the job to the distributed trace it belongs to
    (the client's ``traceparent`` trace id, or a freshly minted one);
    ``submit_span_id`` is the server-side HTTP span that admitted it —
    the parent of the ``job.queued-wait`` span.  ``tracer`` collects
    every span the job produces (queue wait, execution, pipeline
    stages); ``submitted_perf`` anchors the queue-wait interval on the
    monotonic clock the tracer uses.
    """

    id: str
    spec: JobSpec
    status: RunStatus
    state: str = "queued"
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    trace_id: str = ""
    submit_span_id: str | None = None
    tracer: obs.Tracer = field(default_factory=obs.Tracer, repr=False)
    submitted_perf: float = field(default_factory=time.perf_counter, repr=False)

    def to_dict(self) -> dict[str, Any]:
        """JSON-native job document (``POST /jobs`` and ``GET /jobs`` body)."""
        return {
            "id": self.id,
            "run_id": self.status.run_id,
            "state": self.state,
            "error": self.error,
            "spec": self.spec.to_dict(),
            "n_cells": self.spec.n_cells,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "last_event_id": self.status.last_event_id,
            "trace_id": self.trace_id,
        }


class JobQueue:
    """Bounded submit-and-execute engine behind ``POST /jobs``.

    ``capacity`` bounds *queued* jobs (running jobs have already left the
    queue); ``workers`` daemon threads execute jobs through ``executor``
    — by default :meth:`execute_job`, which reuses
    :func:`repro.parallel.run_grid` with the job's pre-registered status.
    ``registry`` is the same :class:`~repro.progress.RunRegistry` the
    telemetry server reads, which is what makes every submitted job
    visible on ``/runs``/``/events``/``/metrics`` for free.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        workers: int = DEFAULT_WORKERS,
        registry: RunRegistry | None = None,
        cache_dir: str | Path | None = None,
        executor: Callable[[Job], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.capacity = capacity
        self.workers = workers
        self.registry = registry if registry is not None else RunRegistry()
        self.cache_dir = cache_dir
        self._executor = executor if executor is not None else self.execute_job
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._pending: queue.Queue[str | None] = queue.Queue(maxsize=capacity)
        self._job_durations: list[float] = []
        self._closed = False
        self._threads: list[threading.Thread] = []
        self.queue_wait_seconds = obs.HistogramFamily(
            "job_queue_wait_seconds",
            "Time a job spent queued between admission and worker pickup.",
        )
        self.execute_seconds = obs.HistogramFamily(
            "job_execute_seconds",
            "Wall-clock execution time of one job, by terminal state.",
            label_names=("state",),
        )
        #: Stage-name → merged :class:`~repro.obs.Histogram` folded in from
        #: every finished job's tracer (pipeline stage durations).
        self._stage_hists: dict[str, obs.Histogram] = {}

    # -- lifecycle ------------------------------------------------------ #
    def start(self) -> "JobQueue":
        """Start the worker threads; returns self (context-manager entry)."""
        if self._threads:
            raise RuntimeError("job queue already started")
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"grade10-job-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        _LOG.debug("job queue started", workers=self.workers, capacity=self.capacity)
        return self

    def shutdown(self, *, drain: bool = False, timeout: float | None = 30.0) -> None:
        """Stop accepting jobs and wind the workers down.

        With ``drain=False`` (the SIGTERM path) every still-queued job is
        cancelled and only in-flight jobs run to completion; with
        ``drain=True`` the workers first execute the whole backlog.
        Idempotent; safe to call before :meth:`start`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queued = [j for j in self._jobs.values() if j.state == "queued"]
        if not drain:
            for job in queued:
                self._cancel_job(job)
        for _ in self._threads:
            self._pending.put(None)  # one sentinel per worker, FIFO after backlog
        for thread in self._threads:
            thread.join(timeout=timeout)
        _LOG.debug("job queue stopped", drained=drain)

    def __enter__(self) -> "JobQueue":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- submission and cancellation ------------------------------------ #
    def submit(
        self,
        body: Any,
        *,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
    ) -> Job:
        """Validate, admit, and enqueue one job; returns it.

        Admission is all-or-nothing: on :class:`JobSpecError` /
        :class:`QueueFullError` / :class:`QueueClosedError` nothing is
        registered and no id is allocated to the caller.

        ``trace_id``/``parent_span_id`` continue a distributed trace
        (the HTTP layer passes the client's trace id and its own request
        span); omitted, the job mints a fresh trace id so its spans are
        always joinable.
        """
        spec = body if isinstance(body, JobSpec) else parse_job_spec(body)
        job_id = f"job-{next(_JOB_SERIAL):06d}-{uuid.uuid4().hex[:8]}"
        if trace_id is None:
            trace_id = obs.new_trace_id()
        status = RunStatus(
            spec.labels(),
            jobs=spec.jobs,
            run_id=job_id,
            meta={"kind": "job", "spec": spec.to_dict(), "trace_id": trace_id},
        )
        job = Job(
            id=job_id,
            spec=spec,
            status=status,
            trace_id=trace_id,
            submit_span_id=parent_span_id,
        )
        with self._lock:
            if self._closed:
                raise QueueClosedError("job queue is shutting down")
            try:
                self._pending.put_nowait(job_id)
            except queue.Full:
                raise QueueFullError(self._retry_after_locked()) from None
            self._jobs[job_id] = job
            self._order.append(job_id)
            # Record admission while still holding the lock: a worker that
            # pops the id immediately blocks on this same lock, so
            # job.queued is always event #1, before its job.started.
            status.record(ProgressEvent(kind="job.queued", data={"job_id": job_id}))
        self.registry.register(status)
        _LOG.debug("job queued", job_id=job_id, cells=spec.n_cells)
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a *queued* job; running/terminal jobs raise.

        Raises :class:`UnknownJobError` for unknown ids and
        :class:`JobNotCancellableError` once the job left ``queued`` —
        in-flight work is never killed (the drain contract).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise UnknownJobError(f"no job {job_id!r}")
            if job.state != "queued":
                raise JobNotCancellableError(job_id, job.state)
            job.state = "cancelled"
            job.finished_at = time.time()
        self._finalize_cancelled(job)
        return job

    def _cancel_job(self, job: Job) -> None:
        """Shutdown-path cancellation (already closed; races are benign)."""
        with self._lock:
            if job.state != "queued":
                return
            job.state = "cancelled"
            job.finished_at = time.time()
        self._finalize_cancelled(job)

    def _finalize_cancelled(self, job: Job) -> None:
        job.status.record(
            ProgressEvent(kind="job.cancelled", data={"job_id": job.id})
        )
        job.status.finish()  # run.finished: the one terminal SSE event
        _LOG.debug("job cancelled", job_id=job.id)

    # -- reading -------------------------------------------------------- #
    def get(self, job_id: str) -> Job:
        """The job submitted as ``job_id`` (:class:`UnknownJobError` if absent)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """Every tracked job, oldest submission first."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> dict[str, int]:
        """Jobs per lifecycle state."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def gauges(self) -> dict[str, float]:
        """Live job-queue gauges merged into the ``/metrics`` exposition."""
        counts = self.counts()
        return {
            "jobqueue_capacity": float(self.capacity),
            "jobqueue_workers": float(self.workers),
            "jobqueue_depth": float(counts["queued"]),
            "jobqueue_running": float(counts["running"]),
            "jobqueue_done": float(counts["done"]),
            "jobqueue_failed": float(counts["failed"]),
            "jobqueue_cancelled": float(counts["cancelled"]),
        }

    def histogram_families(self) -> list[obs.HistogramFamily]:
        """The queue's latency families for the ``/metrics`` exposition."""
        return [self.queue_wait_seconds, self.execute_seconds]

    def stage_snapshots(self) -> dict[str, dict[str, Any]]:
        """Stage-name → histogram snapshot folded from finished jobs.

        Same shape as :meth:`~repro.obs.Tracer.histogram_snapshots`, so
        it merges with the live tracer's through
        :func:`~repro.obs.stage_histogram_family`.
        """
        with self._lock:
            hists = dict(self._stage_hists)
        return {name: hist.snapshot() for name, hist in hists.items()}

    def _fold_job_histograms(self, job: Job) -> None:
        """Merge a finished job's per-stage histograms into the queue's.

        ``job.queued-wait``/``job.execute`` are skipped — they are already
        first-class families — so what remains is the pipeline-stage
        distribution (``cell``, ``generate``, ``parse``, …).
        """
        snaps = job.tracer.histogram_snapshots()
        with self._lock:
            for name, snap in snaps.items():
                if name in ("job.queued-wait", "job.execute"):
                    continue
                hist = self._stage_hists.get(name)
                if hist is None:
                    try:
                        hist = self._stage_hists[name] = obs.Histogram(
                            tuple(snap.get("bounds", ()))
                        )
                    except (TypeError, ValueError):
                        continue
                try:
                    hist.ingest(snap)
                except (KeyError, TypeError, ValueError):
                    continue  # mismatched bounds or malformed: drop

    def retry_after_s(self) -> float:
        """The backpressure hint sent with a 429 (seconds, >= 1)."""
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        backlog = sum(
            1 for j in self._jobs.values() if j.state in ("queued", "running")
        )
        if not self._job_durations:
            return _DEFAULT_RETRY_AFTER_S
        recent = self._job_durations[-_RETRY_WINDOW:]
        mean = sum(recent) / len(recent)
        hint = mean * backlog / self.workers
        # The recorded durations are clamped to finite non-negatives, but
        # keep the floor unconditional: near-zero job durations (or an
        # empty backlog) must never advertise a zero/negative Retry-After.
        if not (hint >= _DEFAULT_RETRY_AFTER_S):  # also catches NaN
            return _DEFAULT_RETRY_AFTER_S
        return hint

    def _record_duration_locked(self, seconds: float) -> None:
        """Record one job's wall-clock duration for the backpressure hint.

        ``time.time`` is not monotonic — NTP steps can make ``finished_at``
        precede ``started_at`` — so negative or non-finite samples are
        dropped rather than poisoning the mean.  The history is bounded to
        the estimate's window.
        """
        if not (0.0 <= seconds < float("inf")):
            return
        self._job_durations.append(seconds)
        if len(self._job_durations) > _RETRY_WINDOW:
            del self._job_durations[: -_RETRY_WINDOW]

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- execution ------------------------------------------------------ #
    def execute_job(self, job: Job) -> None:
        """Default executor: run the job's cells through the batch engine.

        Reuses the job's pre-registered status, so every progress event
        lands on the same gap-free event log clients started streaming at
        submission time.  A ``"live": true`` spec takes the incremental
        path instead: each cell executes inline and its event log is
        streamed through an :class:`~repro.core.incremental.IncrementalProfile`.
        """
        if job.spec.live:
            self.execute_live_job(job)
            return
        from .parallel import run_grid

        run_grid(
            job.spec.cells(),
            jobs=job.spec.jobs,
            cache_dir=self.cache_dir if job.spec.cache else None,
            status=job.status,
        )

    def execute_live_job(self, job: Job) -> None:
        """Live executor: per-cell streaming ingest with windowed analysis.

        Each cell runs inline; its finished event log is then re-fed in
        raw text chunks through the incremental profiler — the same
        decode → seal → analyze path a mid-run follower takes — so
        ``window.analyzed`` and ``bottleneck.detected`` events land on
        the job's gap-free status stream *before* the cell completes,
        and the final profile is the batch pipeline's, bit for bit.
        """
        import io

        from .adapters import merge_blocking_into_resource_trace
        from .core.incremental import IncrementalProfile
        from .progress import current_sink, publish, set_thread_sink
        from .systems.logging import write_jsonl
        from .workloads.runner import analysis_inputs, run_workload

        previous_sink = set_thread_sink(job.status.record)
        try:
            for cell in job.spec.cells():
                label = cell.spec.label
                publish("cell.started", label)
                t0 = time.perf_counter()
                try:
                    with obs.span("cell", label=label):
                        run = run_workload(cell.spec)
                        system_run = run.system_run
                        model, resources, rules = analysis_inputs(system_run, tuned=True)
                        resource_trace = system_run.recorder.sample(
                            0.4, t_end=system_run.makespan
                        )
                        merge_blocking_into_resource_trace(system_run.log, resource_trace)
                        # ~8 live windows per run regardless of preset.
                        window_slices = max(1, int(system_run.makespan / 0.01 / 8))

                        def on_window(s: Any, label: str = label) -> None:
                            publish(
                                "window.analyzed",
                                label,
                                index=s.index,
                                t_start=s.t_start,
                                t_end=s.t_end,
                                n_rows=s.n_rows,
                                n_bottlenecks=len(s.bottlenecks),
                                lag_seconds=s.lag_seconds,
                            )

                        def on_bottleneck(b: Any, label: str = label) -> None:
                            # publish() reserves the "kind" name for the
                            # event kind, so the data dict (which carries
                            # the *bottleneck* kind) goes through the sink
                            # directly.
                            sink = current_sink()
                            if sink is None:
                                return
                            data = b.to_dict()
                            data["seconds"] = b.duration
                            try:
                                sink(
                                    ProgressEvent(
                                        kind="bottleneck.detected", label=label, data=data
                                    )
                                )
                            except Exception:
                                pass

                        inc = IncrementalProfile(
                            model,
                            resources,
                            rules,
                            include_gc_phases=True,
                            window_slices=window_slices,
                            on_window=on_window,
                            on_bottleneck=on_bottleneck,
                        )
                        inc.feed_resource_trace(resource_trace)
                        buf = io.StringIO()
                        write_jsonl(system_run.log, buf)
                        text = buf.getvalue()
                        for i in range(0, len(text), 8192):
                            inc.feed_text(text[i : i + 8192])
                        profile = inc.finalize(resource_trace=resource_trace)
                except Exception as exc:
                    publish("cell.failed", label, error=repr(exc))
                    _LOG.warning("live cell failed", label=label, error=repr(exc))
                else:
                    publish(
                        "cell.finished",
                        label,
                        duration=time.perf_counter() - t0,
                        cached=False,
                        windows=inc.windows_analyzed,
                        bottlenecks=len(profile.bottlenecks.bottlenecks),
                    )
        finally:
            set_thread_sink(previous_sink)

    def _worker_loop(self) -> None:
        while True:
            job_id = self._pending.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs[job_id]
                if job.state != "queued":
                    continue  # cancelled while waiting in the queue
                job.state = "running"
                job.started_at = time.time()
            # The queue-wait interval starts on the submitting thread and
            # ends here, so it is recorded retroactively from its measured
            # endpoints rather than held open as a context manager.
            wait_s = max(time.perf_counter() - job.submitted_perf, 0.0)
            wait_span = job.tracer.record_span(
                "job.queued-wait",
                start_s=job.submitted_perf,
                duration_s=wait_s,
                parent_id=job.submit_span_id,
                trace_id=job.trace_id,
                job_id=job_id,
            )
            self.queue_wait_seconds.observe(
                wait_s, exemplar={"span_id": wait_span, "trace_id": job.trace_id}
            )
            job.status.record(
                ProgressEvent(kind="job.started", data={"job_id": job_id})
            )
            # The job tracer becomes this thread's tracer overlay for the
            # duration: every pipeline-stage span the executor opens (and
            # every worker snapshot run_grid ingests) lands on it.
            previous = obs.set_thread_tracer(job.tracer)
            execute_span = job.tracer.span(
                "job.execute",
                parent_id=wait_span,
                trace_id=job.trace_id,
                job_id=job_id,
            )
            t0 = time.perf_counter()
            state = "failed"
            try:
                with execute_span:
                    self._executor(job)
            except Exception as exc:
                with self._lock:
                    job.state = "failed"
                    job.error = repr(exc)
                    job.finished_at = time.time()
                job.status.record(
                    ProgressEvent(
                        kind="job.failed", data={"job_id": job_id, "error": repr(exc)}
                    )
                )
                _LOG.warning("job failed", job_id=job_id, error=repr(exc))
            else:
                state = "done"
                with self._lock:
                    job.state = "done"
                    job.finished_at = time.time()
                _LOG.debug("job done", job_id=job_id)
            finally:
                obs.set_thread_tracer(previous)
                self.execute_seconds.observe(
                    max(time.perf_counter() - t0, 0.0),
                    labels={"state": state},
                    exemplar={
                        "span_id": execute_span.span_id,
                        "trace_id": job.trace_id,
                    },
                )
                self._fold_job_histograms(job)
                with self._lock:
                    if job.started_at is not None and job.finished_at is not None:
                        self._record_duration_locked(job.finished_at - job.started_at)
                if not job.status.finished:
                    job.status.finish()


# ---------------------------------------------------------------------- #
# Trace assembly: one Chrome-trace document per job
# ---------------------------------------------------------------------- #


def assemble_job_trace(
    job: Job, extra_events: Iterable[Mapping[str, Any]] = ()
) -> dict[str, Any]:
    """Merge a job's spans with the server's into one Chrome trace.

    ``extra_events`` is the serving process's HTTP-span event list; only
    complete (``"X"``) events tagged with the job's trace id are taken —
    the submitting ``POST /jobs`` request span, plus any other request
    the client stamped with the same ``traceparent``.  The job tracer
    contributes ``job.queued-wait``, ``job.execute``, and every pipeline
    stage span (both threads share the machine-wide monotonic clock, so
    the merged intervals nest without translation).

    The result is one rooted tree: a synthetic ``job`` span covering the
    whole interval adopts every span whose recorded parent is outside
    the document (e.g. the HTTP span's client-side parent, preserved as
    ``args.client_parent``), preferring the smallest span that strictly
    encloses the orphan.  Timestamps are rebased so the trace starts at
    zero.  No span in the output has a dangling parent reference.
    """
    trace_id = job.trace_id
    events: list[dict[str, Any]] = []
    for event in extra_events:
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        if args.get("trace") != trace_id:
            continue
        events.append({**event, "args": dict(args)})
    for event in job.tracer.snapshot()["events"]:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        args.setdefault("trace", trace_id)
        events.append({**event, "args": args})

    t_min = min((e["ts"] for e in events), default=0.0)
    t_max = max((e["ts"] + float(e.get("dur", 0.0)) for e in events), default=0.0)
    root_id = f"job:{job.id}"
    known = {args["id"] for e in events if (args := e["args"]).get("id")}
    known.add(root_id)
    # Longest-first, so the smallest strictly-enclosing candidate wins.
    by_size = sorted(events, key=lambda e: -float(e.get("dur", 0.0)))
    for e in events:
        parent = e["args"].get("parent")
        if parent in known:
            continue
        if parent is not None:
            # The client's span id off the traceparent header: outside
            # this document but worth keeping for cross-system joins.
            e["args"]["client_parent"] = parent
        ts, dur = e["ts"], float(e.get("dur", 0.0))
        adoptive = root_id
        for other in by_size:
            if other is e or float(other.get("dur", 0.0)) <= dur:
                continue
            o_ts, o_dur = other["ts"], float(other.get("dur", 0.0))
            if o_ts <= ts and ts + dur <= o_ts + o_dur and other["args"].get("id"):
                adoptive = other["args"]["id"]
        e["args"]["parent"] = adoptive

    events.append(
        {
            "ph": "X",
            "cat": "job",
            "name": "job",
            "pid": job.tracer.pid,
            "tid": 0,
            "ts": t_min,
            "dur": max(t_max - t_min, 0.0),
            "args": {
                "id": root_id,
                "trace": trace_id,
                "job_id": job.id,
                "state": job.state,
            },
        }
    )
    for e in events:
        e["ts"] = e["ts"] - t_min
    events.sort(key=lambda e: (e["ts"], -float(e.get("dur", 0.0))))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "job_id": job.id,
            "run_id": job.status.run_id,
            "trace_id": trace_id,
            "state": job.state,
        },
    }
